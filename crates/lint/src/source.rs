//! Lexical model of one Rust source file.
//!
//! The scanner is deliberately *lexical*, not syntactic: it understands
//! exactly enough Rust to answer the questions the rules ask — what is
//! code vs. comment vs. string literal, which byte ranges belong to
//! `#[cfg(test)]`/`#[test]` items, and where inline
//! `lint: allow(rule/id)` markers sit — without pulling in a parser.
//! Everything downstream works on [`SourceFile::code`], a byte-for-byte
//! copy of the original text in which comment bodies and literal
//! contents have been blanked to spaces (newlines and the delimiting
//! quotes survive), so byte offsets, line numbers, and brace matching
//! all stay valid on the stripped view.

/// One string literal found in the source.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the opening quote in [`SourceFile::code`].
    pub offset: usize,
    /// Decoded-ish content: the raw bytes between the delimiters
    /// (escape sequences are preserved verbatim — the rules only ever
    /// compare literals that need no escaping, like metric names).
    pub content: String,
    /// 1-based line of the opening quote.
    pub line: usize,
}

/// One comment (line or block) found in the source.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text without the `//`/`/*` markers.
    pub text: String,
    /// Whether any code precedes the comment on its starting line.
    pub code_before: bool,
}

/// A resolved inline `lint: allow(rule/id)` marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// 1-based line the marker suppresses findings on.
    pub line: usize,
    /// Rule id the marker names.
    pub rule: String,
}

/// A lexed source file plus the derived maps the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Root-relative path with `/` separators.
    pub path: String,
    /// Original text.
    pub raw: String,
    /// Same length as `raw`; comments and literal contents blanked.
    pub code: String,
    /// Byte offset of each line start (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// String literals in offset order.
    pub strings: Vec<StrLit>,
    /// Comments in offset order.
    pub comments: Vec<Comment>,
    /// Byte ranges (half-open) covered by `#[cfg(test)]`/`#[test]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Resolved inline allow markers.
    pub allows: Vec<AllowMarker>,
}

impl SourceFile {
    /// Lexes `raw` into a source model. `path` is stored verbatim.
    pub fn new(path: String, raw: String) -> SourceFile {
        let (code, strings, comments) = strip(&raw);
        let line_starts = line_starts(&raw);
        let mut file = SourceFile {
            path,
            raw,
            code,
            line_starts,
            strings: Vec::new(),
            comments: Vec::new(),
            test_ranges: Vec::new(),
            allows: Vec::new(),
        };
        file.strings = strings
            .into_iter()
            .map(|(offset, content)| StrLit {
                line: file.line_of(offset),
                offset,
                content,
            })
            .collect();
        file.comments = comments;
        file.test_ranges = test_ranges(&file.code);
        file.allows = resolve_allows(&file);
        file
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The stripped code of a 1-based line (without trailing newline).
    pub fn line_code(&self, line: usize) -> &str {
        self.slice_line(&self.code, line)
    }

    /// The original text of a 1-based line (without trailing newline).
    pub fn line_raw(&self, line: usize) -> &str {
        self.slice_line(&self.raw, line)
    }

    fn slice_line<'a>(&self, text: &'a str, line: usize) -> &'a str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(text.len(), |&next| next.saturating_sub(1));
        &text[start..end.max(start)]
    }

    /// Whether byte `offset` falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test_range(&self, offset: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| offset >= a && offset < b)
    }

    /// Byte offsets at which `token` occurs in the stripped code as a
    /// whole word (neither neighbor is an identifier character).
    pub fn token_offsets(&self, token: &str) -> Vec<usize> {
        let bytes = self.code.as_bytes();
        let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80;
        let mut out = Vec::new();
        let mut from = 0;
        // Boundary checks apply only on edges where the token itself has
        // an identifier character: `.unwrap` starts with `.` (so `x.unwrap`
        // must match) and `panic!` ends with `!` (already a boundary).
        let head_is_ident = token.as_bytes().first().is_some_and(|&b| is_ident(b));
        let tail_is_ident = token.as_bytes().last().is_some_and(|&b| is_ident(b));
        while let Some(pos) = self.code[from..].find(token) {
            let at = from + pos;
            let before_ok = !head_is_ident || at == 0 || !is_ident(bytes[at - 1]);
            let end = at + token.len();
            let after_ok = !tail_is_ident || end >= bytes.len() || !is_ident(bytes[end]);
            if before_ok && after_ok {
                out.push(at);
            }
            from = at + token.len().max(1);
        }
        out
    }

    /// The string literal that is the first argument of a call whose
    /// opening parenthesis sits at byte `paren` — i.e. the next
    /// non-whitespace character after `paren` is a double quote, and a
    /// recorded literal starts there.
    pub fn first_arg_literal(&self, paren: usize) -> Option<&StrLit> {
        let bytes = self.code.as_bytes();
        let mut i = paren + 1;
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'"' {
            return None;
        }
        self.strings.iter().find(|s| s.offset == i)
    }

    /// Whether a `SAFETY:` comment annotates 1-based `line` — on the
    /// line itself or within the `window` preceding lines.
    pub fn has_safety_comment(&self, line: usize, window: usize) -> bool {
        let lo = line.saturating_sub(window);
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains("SAFETY:"))
    }

    /// Whether an inline allow marker for `rule` covers 1-based `line`.
    pub fn allowed_inline(&self, line: usize, rule: &str) -> bool {
        self.allows.iter().any(|a| a.line == line && a.rule == rule)
    }
}

/// Byte offset of each line start.
fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Core lexer: returns (stripped code, string literals, comments).
#[allow(clippy::type_complexity)]
fn strip(raw: &str) -> (String, Vec<(usize, String)>, Vec<Comment>) {
    let bytes = raw.as_bytes();
    let mut code = bytes.to_vec();
    let mut strings = Vec::new();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let blank = |code: &mut Vec<u8>, from: usize, to: usize| {
        for b in code.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = raw[i..].find('\n').map_or(bytes.len(), |p| i + p);
                comments.push(Comment {
                    line,
                    text: raw[i + 2..end].to_string(),
                    code_before: line_has_code,
                });
                blank(&mut code, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let had_code = line_has_code;
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if bytes[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: raw[i + 2..j.saturating_sub(2).max(i + 2)].to_string(),
                    code_before: had_code,
                });
                blank(&mut code, i, j);
                i = j;
            }
            b'"' => {
                let (end, content) = scan_string(bytes, i, &mut line);
                strings.push((i, content));
                blank(&mut code, i + 1, end.saturating_sub(1).max(i + 1));
                line_has_code = true;
                i = end;
            }
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                if let Some((quote, hashes)) = raw_string_prefix(bytes, i) {
                    let (end, content) = scan_raw_string(bytes, quote, hashes, &mut line);
                    strings.push((quote, content));
                    blank(
                        &mut code,
                        quote + 1,
                        end.saturating_sub(1 + hashes).max(quote + 1),
                    );
                    line_has_code = true;
                    i = end;
                } else if bytes.get(i) == Some(&b'b') && bytes.get(i + 1) == Some(&b'"') {
                    let (end, content) = scan_string(bytes, i + 1, &mut line);
                    strings.push((i + 1, content));
                    blank(&mut code, i + 2, end.saturating_sub(1).max(i + 2));
                    line_has_code = true;
                    i = end;
                } else {
                    line_has_code = true;
                    i += 1;
                }
            }
            b'\'' => {
                // Disambiguate char literal from lifetime: a backslash
                // next is always a char; otherwise it is a char only if
                // a closing quote follows one character later.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 2;
                    if j < bytes.len() {
                        j += 1; // the escaped character
                    }
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    let end = (j + 1).min(bytes.len());
                    blank(&mut code, i + 1, end.saturating_sub(1).max(i + 1));
                    i = end;
                } else {
                    let ch_len = raw[i + 1..].chars().next().map_or(0, char::len_utf8);
                    if ch_len > 0 && bytes.get(i + 1 + ch_len) == Some(&b'\'') {
                        let end = i + 2 + ch_len;
                        blank(&mut code, i + 1, end - 1);
                        i = end;
                    } else {
                        i += 1; // lifetime
                    }
                }
                line_has_code = true;
            }
            _ => {
                if !(b as char).is_whitespace() {
                    line_has_code = true;
                }
                i += 1;
            }
        }
    }
    // Blanking replaces whole characters with ASCII spaces, so the
    // result is valid UTF-8 by construction.
    let code = String::from_utf8(code).expect("blanking preserves UTF-8");
    (code, strings, comments)
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && {
        let b = bytes[i - 1];
        b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
    }
}

/// If a raw-string opener (`r"`, `r#"`, `br##"`, …) starts at `i`,
/// returns (offset of the quote, number of hashes).
fn raw_string_prefix(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    let mut saw_r = false;
    for _ in 0..2 {
        match bytes.get(j) {
            Some(&b'r') if !saw_r => {
                saw_r = true;
                j += 1;
            }
            Some(&b'b') if j == i => j += 1,
            _ => break,
        }
    }
    if !saw_r {
        return None;
    }
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some((j, hashes))
}

/// Scans a normal string starting at the opening quote; returns
/// (offset past the closing quote, content).
fn scan_string(bytes: &[u8], open: usize, line: &mut usize) -> (usize, String) {
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => {
                return (
                    j + 1,
                    String::from_utf8_lossy(&bytes[open + 1..j]).into_owned(),
                )
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, String::from_utf8_lossy(&bytes[open + 1..j]).into_owned())
}

/// Scans a raw string whose opening quote sits at `open` with `hashes`
/// trailing hash marks; returns (offset past the closer, content).
fn scan_raw_string(bytes: &[u8], open: usize, hashes: usize, line: &mut usize) -> (usize, String) {
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut j = open + 1;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
        }
        if bytes[j..].starts_with(&closer) {
            return (
                j + closer.len(),
                String::from_utf8_lossy(&bytes[open + 1..j]).into_owned(),
            );
        }
        j += 1;
    }
    (j, String::from_utf8_lossy(&bytes[open + 1..j]).into_owned())
}

/// Byte ranges covered by `#[cfg(test)]` / `#[test]` items in stripped
/// code: the attribute plus the following item (to its closing brace,
/// or to `;` for brace-less items).
fn test_ranges(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut ranges = Vec::new();
    let mut i = 0;
    while let Some(pos) = code[i..].find("#[") {
        let attr_start = i + pos;
        let Some((attr_end, attr_text)) = attribute_at(code, attr_start) else {
            i = attr_start + 2;
            continue;
        };
        if !attr_marks_test(&attr_text) {
            i = attr_end;
            continue;
        }
        // Skip whitespace and any further attributes to reach the item.
        let mut j = attr_end;
        loop {
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if code[j..].starts_with("#[") {
                match attribute_at(code, j) {
                    Some((end, _)) => j = end,
                    None => break,
                }
            } else {
                break;
            }
        }
        // The item extends to its matching close brace, or to the first
        // `;` when no brace opens first (e.g. `#[cfg(test)] use x;`).
        let mut depth = 0usize;
        let mut end = bytes.len();
        let mut k = j;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        ranges.push((attr_start, end));
        i = attr_end;
    }
    ranges
}

/// Parses the attribute starting at `start` (`#[...]` with nested
/// brackets); returns (offset past `]`, inner text). Shared with the
/// item-aware index in `items`.
pub(crate) fn attribute_at(code: &str, start: usize) -> Option<(usize, String)> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut j = start + 1; // at '['
    while j < bytes.len() {
        match bytes[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, code[start + 2..j].to_string()));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Whether an attribute body marks a test item: `test`, `cfg(test)`,
/// `cfg(all(test, …))`, `cfg(any(…, test))`, ….
fn attr_marks_test(attr: &str) -> bool {
    let t = attr.trim();
    if t == "test" {
        return true;
    }
    if !t.starts_with("cfg") {
        return false;
    }
    // Word-boundary search for `test` inside the cfg predicate.
    let b = t.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut from = 0;
    while let Some(p) = t[from..].find("test") {
        let at = from + p;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let end = at + 4;
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 4;
    }
    false
}

/// Resolves `lint: allow(rule, rule2)` comment markers to target lines:
/// a trailing comment suppresses its own line; a standalone comment
/// suppresses the next line that carries code.
fn resolve_allows(file: &SourceFile) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for c in &file.comments {
        let Some(open) = c.text.find("lint: allow(") else {
            continue;
        };
        let rest = &c.text[open + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let target = if c.code_before {
            c.line
        } else {
            // First subsequent line with any non-blank stripped code.
            let mut line = c.line + 1;
            while line <= file.line_starts.len() && file.line_code(line).trim().is_empty() {
                line += 1;
            }
            line
        };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push(AllowMarker {
                    line: target,
                    rule: rule.to_string(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), src.to_string())
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = lex("let a = \"Instant::now\"; // Instant::now\nlet b = 1;\n");
        assert!(!f.code.contains("Instant::now"));
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].content, "Instant::now");
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].code_before);
        // Offsets survive blanking: code and raw have equal length.
        assert_eq!(f.code.len(), f.raw.len());
    }

    #[test]
    fn block_comments_nest() {
        let f = lex("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(f.code.contains("let x = 1;"));
        assert!(!f.code.contains("outer"));
        assert!(!f.code.contains("still"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let f = lex("let s = r#\"panic!(\"inner\")\"#; let t = r\"plain\";\n");
        assert!(!f.code.contains("panic!"));
        assert_eq!(f.strings.len(), 2);
        assert_eq!(f.strings[0].content, "panic!(\"inner\")");
        assert_eq!(f.strings[1].content, "plain");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }\n");
        // Lifetimes survive; char contents are blanked.
        assert!(f.code.contains("<'a>"));
        assert!(!f.code.contains("'x'"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let f = lex("let s = \"line one\nline two\";\nlet after = 1; // mark\n");
        assert_eq!(f.comments[0].line, 3);
        assert_eq!(f.strings[0].line, 1);
    }

    #[test]
    fn cfg_test_ranges_cover_items() {
        let src = "\
fn live() { x(); }
#[cfg(test)]
mod tests {
    fn helper() { y(); }
}
fn also_live() {}
";
        let f = lex(src);
        let live = f.code.find("live").unwrap();
        let helper = f.code.find("helper").unwrap();
        let also = f.code.find("also_live").unwrap();
        assert!(!f.in_test_range(live));
        assert!(f.in_test_range(helper));
        assert!(!f.in_test_range(also));
    }

    #[test]
    fn cfg_all_test_and_test_attr_count() {
        let src = "\
#[cfg(all(test, feature = \"x\"))]
fn a() {}
#[test]
fn b() {}
#[cfg(testing_utils)]
fn c() {}
";
        let f = lex(src);
        assert!(f.in_test_range(f.code.find("fn a").unwrap()));
        assert!(f.in_test_range(f.code.find("fn b").unwrap()));
        assert!(!f.in_test_range(f.code.find("fn c").unwrap()));
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let f = lex(src);
        assert!(f.in_test_range(f.code.find("HashMap").unwrap()));
        assert!(!f.in_test_range(f.code.find("live").unwrap()));
    }

    #[test]
    fn token_offsets_respect_boundaries() {
        let f = lex("let unsafe_code = 1; unsafe { x() }\n");
        assert_eq!(f.token_offsets("unsafe").len(), 1);
    }

    #[test]
    fn dot_prefixed_tokens_match_after_receivers() {
        let f = lex("let y = x.unwrap(); let z = x.unwrap_or(0); tel.incr(\"n\", 1);\n");
        assert_eq!(f.token_offsets(".unwrap").len(), 1);
        assert_eq!(f.token_offsets(".incr").len(), 1);
    }

    #[test]
    fn first_arg_literal_spans_newlines() {
        let f = lex("tel.event(\n    \"health.round\",\n    &[],\n);\n");
        let paren = f.code.find("(").unwrap();
        let lit = f.first_arg_literal(paren).unwrap();
        assert_eq!(lit.content, "health.round");
        assert_eq!(lit.line, 2);
    }

    #[test]
    fn allow_markers_resolve_to_lines() {
        let src = "\
// lint: allow(forbidden/panic) startup can die loudly
let a = x.unwrap();
let b = y.unwrap(); // lint: allow(forbidden/panic) same-line form
";
        let f = lex(src);
        assert!(f.allowed_inline(2, "forbidden/panic"));
        assert!(f.allowed_inline(3, "forbidden/panic"));
        assert!(!f.allowed_inline(1, "forbidden/panic"));
    }

    #[test]
    fn safety_comment_window() {
        let src = "\
// SAFETY: bounds checked above.
unsafe { go() }

unsafe { other() }
";
        let f = lex(src);
        assert!(f.has_safety_comment(2, 3));
        assert!(!f.has_safety_comment(4, 1));
    }
}
