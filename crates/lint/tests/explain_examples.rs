//! The `--explain` examples in the rule registry are honest: each
//! dirty snippet actually trips the rule it illustrates when placed at
//! its stated path, and each clean snippet does not. Rules without a
//! standalone example (workspace-context rules like the allowlist,
//! schema, and telemetry families) render a pointer to the fixture
//! trees instead.

use std::fs;
use std::path::PathBuf;

use fhdnn_lint::rules::RULES;

/// Builds a one-file scratch workspace holding `text` at `path`.
fn scratch(tag: &str, path: &str, text: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join("fhdnn-lint-example-tests")
        .join(tag);
    let _ = fs::remove_dir_all(&root);
    let file = root.join(path);
    fs::create_dir_all(file.parent().expect("example paths have parents")).expect("mkdir scratch");
    fs::write(&file, text).expect("write scratch");
    root
}

#[test]
fn dirty_examples_trip_their_rule_and_clean_examples_do_not() {
    let mut checked = 0;
    for info in RULES {
        let Some(ex) = &info.example else { continue };
        let tag = info.id.replace('/', "-");

        let root = scratch(&format!("{tag}-dirty"), ex.path, ex.dirty);
        let report = fhdnn_lint::run(&root).expect("lint runs on dirty example");
        assert!(
            report.findings.iter().any(|f| f.rule == info.id),
            "{}: dirty example must trip its own rule; got {:?}",
            info.id,
            report.findings
        );

        let root = scratch(&format!("{tag}-clean"), ex.path, ex.clean);
        let report = fhdnn_lint::run(&root).expect("lint runs on clean example");
        // Filter to the illustrated rule: a clean snippet for one rule
        // may legitimately reference workspace context another rule
        // wants (e.g. a telemetry metric name the one-file scratch
        // tree cannot register).
        let relapse: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == info.id)
            .collect();
        assert!(
            relapse.is_empty(),
            "{}: clean example must not trip its own rule; got {relapse:?}",
            info.id
        );
        checked += 1;
    }
    assert!(
        checked >= 10,
        "expected examples for at least the determinism/forbidden/unsafe/concurrency/panic families, found {checked}"
    );
}

#[test]
fn explain_renders_examples_and_rejects_unknown_rules() {
    for info in RULES {
        let text = fhdnn_lint::explain(info.id).expect("every registered rule explains itself");
        assert!(
            text.starts_with(info.id),
            "{}: header leads with the id",
            info.id
        );
        assert!(
            text.contains(info.help),
            "{}: includes the help line",
            info.id
        );
        assert!(text.contains("Why:"), "{}: includes the rationale", info.id);
        if info.example.is_some() {
            assert!(
                text.contains("Trips ("),
                "{}: shows the dirty snippet",
                info.id
            );
            assert!(
                text.contains("Passes:"),
                "{}: shows the clean snippet",
                info.id
            );
        } else {
            assert!(
                text.contains("fixtures"),
                "{}: points at the fixture trees when no standalone example exists",
                info.id
            );
        }
    }
    assert!(fhdnn_lint::explain("no/such-rule").is_none());
    let ids = fhdnn_lint::rule_ids();
    assert_eq!(ids.len(), RULES.len());
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids stay sorted");
}
