//! End-to-end runs over the committed fixture workspaces: the dirty
//! tree must produce exactly the expected findings, the clean tree
//! none. These are the positive/negative cases for every rule family
//! at the whole-engine level (unit tests inside each rule module cover
//! the finer edges).

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn dirty_fixture_trips_every_rule_family() {
    let report = fhdnn_lint::run(&fixture("dirty")).expect("lint runs");
    assert!(report.failed());

    let got: Vec<(String, String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.path.clone(), f.line))
        .collect();
    let fedhd = "crates/federated/src/fedhd.rs";
    let expected: Vec<(String, String, usize)> = [
        ("determinism/hash-iteration", fedhd, 2),
        // Line 9 mentions HashMap twice; identical findings dedup to one.
        ("determinism/hash-iteration", fedhd, 9),
        ("determinism/wall-clock", fedhd, 5),
        ("forbidden/panic", fedhd, 10),
        ("forbidden/print", fedhd, 6),
        ("schema/drift", "crates/federated/src/metrics.rs", 0),
        ("telemetry/unregistered", fedhd, 7),
        ("telemetry/unregistered", fedhd, 8),
        ("unsafe/needs-safety-comment", "crates/hdc/src/simd.rs", 3),
        ("unsafe/contract", "crates/hdc/src/simd.rs", 8),
        (
            "unsafe/target-feature-reachability",
            "crates/hdc/src/simd.rs",
            17,
        ),
        (
            "concurrency/atomic-ordering",
            "crates/telemetry/src/mem.rs",
            7,
        ),
        ("concurrency/rng-stream", fedhd, 16),
        ("panic/indexing", "crates/hdc/src/packed.rs", 3),
        ("allowlist/unused", "lint.toml", 0),
    ]
    .into_iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), l))
    .collect();
    let mut expected = expected;
    expected.sort();
    let mut sorted_got = got.clone();
    sorted_got.sort();
    assert_eq!(
        sorted_got,
        expected,
        "full report:\n{}",
        report.render_text()
    );

    // The kind-mismatch message is distinct from the unknown-name one.
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("registered as gauge")));
}

#[test]
fn clean_fixture_passes_with_zero_findings() {
    let report = fhdnn_lint::run(&fixture("clean")).expect("lint runs");
    assert!(
        report.findings.is_empty(),
        "clean fixture must have no findings:\n{}",
        report.render_text()
    );
    assert!(!report.failed());
}

#[test]
fn dirty_fixture_json_is_byte_identical_across_runs() {
    let a = fhdnn_lint::run(&fixture("dirty")).expect("first run");
    let b = fhdnn_lint::run(&fixture("dirty")).expect("second run");
    assert_eq!(a.render_json(), b.render_json());
    assert_eq!(a.render_text(), b.render_text());
}
