//! Fixture: the same behaviours expressed legally.
use std::collections::BTreeMap;

pub fn run_round(tel: &Recorder, x: Option<u64>) -> u64 {
    let tick = tel.now_micros();
    tel.incr("fl.rounds", 1);
    tel.gauge("fl.test_accuracy", 0.9);
    let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
    seen.insert(0, x.unwrap_or(0));
    let _elapsed = tel.now_micros().saturating_sub(tick);
    // lint: allow(forbidden/panic) fixture demonstrates inline allows
    let y = x.unwrap();
    y
}

pub fn fan_out(seed: u64) {
    let rngs: Vec<_> = (0..4)
        .map(|c| StdRng::seed_from_u64(split_seed(seed, c)))
        .collect();
    run_tasks(rngs, 4, |_, r| r);
}
