//! Fixture: frozen struct matching the committed baseline exactly.
pub struct RoundMetrics {
    pub round: usize,
    pub test_accuracy: f64,
}
