//! Fixture: hot-path indexing with its obligation discharged.
// BOUNDS: callers pass i < words.len() by construction.
pub fn word_at(words: &[u64], i: usize) -> u64 {
    words[i]
}
