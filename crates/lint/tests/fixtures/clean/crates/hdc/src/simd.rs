//! Fixture: documented unsafe.
pub fn load(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees p points at a live, aligned u64.
    unsafe { *p }
}

pub fn head(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees p points at two u64s, so the
    // offset read stays within bounds.
    unsafe { *p.add(1) }
}

#[target_feature(enable = "avx2")]
// SAFETY: dispatcher-only caller, after runtime AVX2 detection.
pub unsafe fn kernel(x: u64) -> u64 { x }

pub fn fast(x: u64) -> u64 {
    if backend() == Backend::Avx2 {
        // SAFETY: reached only after runtime detection confirmed AVX2.
        unsafe { kernel(x) }
    } else {
        x
    }
}
