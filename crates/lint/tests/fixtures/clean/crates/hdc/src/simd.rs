//! Fixture: documented unsafe.
pub fn load(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees p points at a live, aligned u64.
    unsafe { *p }
}
