//! Fixture: atomic traffic with the ordering choice written down.
use std::sync::atomic::{AtomicU64, Ordering};

pub static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

pub fn record_alloc(size: u64) {
    // ORDERING: Relaxed — independent monotonic counter; readers
    // reconcile via the ledger identity, never a happens-before edge.
    LIVE_BYTES.fetch_add(size, Ordering::Relaxed);
}
