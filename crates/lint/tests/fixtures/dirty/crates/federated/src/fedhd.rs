//! Fixture: one violation of each behaviour rule family in core code.
use std::collections::HashMap;

pub fn run_round(tel: &Recorder, x: Option<u64>) -> u64 {
    let wall = std::time::Instant::now();
    println!("round starting at {wall:?}");
    tel.incr("not.a.registered.metric", 1);
    tel.incr("fl.test_accuracy", 1);
    let mut seen: HashMap<u64, u64> = HashMap::new();
    seen.insert(0, x.unwrap());
    0
}

pub fn fan_out(seed: u64) {
    let rngs: Vec<_> = (0..4)
        .map(|c| StdRng::seed_from_u64(seed + c))
        .collect();
    run_tasks(rngs, 4, |_, r| r);
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_test_code_may_do_all_of_this() {
        let _t = std::time::Instant::now();
        println!("fine in tests");
        Some(1u64).unwrap();
    }
}
