//! Fixture: frozen struct that drifted from the committed baseline.
pub struct RoundMetrics {
    pub round: usize,
    pub test_accuracy: f64,
    pub sneaky_new_field: u32,
}
