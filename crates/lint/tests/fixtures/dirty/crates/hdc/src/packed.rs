//! Fixture: hot-path indexing without a BOUNDS justification.
pub fn word_at(words: &[u64], i: usize) -> u64 {
    words[i]
}
