//! Fixture: undocumented unsafe.
pub fn load(p: *const u64) -> u64 {
    unsafe { *p }
}

pub fn head(p: *const u64) -> u64 {
    // SAFETY: fine.
    unsafe { *p.add(1) }
}

#[target_feature(enable = "avx2")]
// SAFETY: dispatcher-only caller, after runtime AVX2 detection.
pub unsafe fn kernel(x: u64) -> u64 { x }

pub fn fast(x: u64) -> u64 {
    // SAFETY: AVX2 assumed available.
    unsafe { kernel(x) }
}
