//! Fixture: undocumented unsafe.
pub fn load(p: *const u64) -> u64 {
    unsafe { *p }
}
