//! Fixture: atomic traffic with no ORDERING justification.
use std::sync::atomic::{AtomicU64, Ordering};

pub static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

pub fn record_alloc(size: u64) {
    LIVE_BYTES.fetch_add(size, Ordering::Relaxed);
}
