//! The lint's strongest test: the workspace that ships the lint must
//! itself be lint-clean, and the machine output must be byte-stable.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crate lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let report = fhdnn_lint::run(&workspace_root()).expect("lint runs");
    assert!(
        report.findings.is_empty(),
        "the workspace must stay lint-clean; fix or explicitly allow:\n{}",
        report.render_text()
    );
    // Sanity: a clean report must still mean real coverage.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did the walk break?",
        report.files_scanned
    );
}

#[test]
fn workspace_json_report_is_byte_identical_across_runs() {
    let a = fhdnn_lint::run(&workspace_root()).expect("first run");
    let b = fhdnn_lint::run(&workspace_root()).expect("second run");
    assert_eq!(
        a.render_json(),
        b.render_json(),
        "--json output must be deterministic"
    );
}

#[test]
fn every_registry_metric_has_a_live_reference() {
    // Covered by `workspace_is_lint_clean` via telemetry/orphan, but
    // spelled out so a registry regression names the rule directly.
    let report = fhdnn_lint::run(&workspace_root()).expect("lint runs");
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule.starts_with("telemetry/")),
        "telemetry registry drifted:\n{}",
        report.render_text()
    );
}
