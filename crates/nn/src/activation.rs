//! Elementwise activation layers.

use fhdnn_tensor::Tensor;

use crate::{Layer, Mode, NnError, Result};

/// Rectified linear unit: `y = max(0, x)`.
///
/// # Example
///
/// ```
/// use fhdnn_nn::activation::Relu;
/// use fhdnn_nn::{Layer, Mode};
/// use fhdnn_tensor::Tensor;
///
/// # fn main() -> Result<(), fhdnn_nn::NnError> {
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[2])?;
/// let y = relu.forward(&x, Mode::Eval)?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Relu"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        }
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::MissingForwardCache { layer: "Relu" })?;
        if mask.len() != grad_output.len() {
            return Err(NnError::BadInputShape {
                layer: "Relu",
                detail: format!(
                    "grad length {} != cached activation length {}",
                    grad_output.len(),
                    mask.len()
                ),
            });
        }
        let mut g = grad_output.clone();
        for (x, &keep) in g.as_mut_slice().iter_mut().zip(&mask) {
            if !keep {
                *x = 0.0;
            }
        }
        Ok(g)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(input_dims.to_vec())
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        Ok(input_dims.iter().product::<usize>() as u64)
    }
}

/// Hyperbolic tangent activation, used by the contrastive projection head.
#[derive(Debug, Default, Clone)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let out = self
            .output
            .take()
            .ok_or(NnError::MissingForwardCache { layer: "Tanh" })?;
        Ok(grad_output.zip_map(&out, |g, y| g * (1.0 - y * y))?)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(input_dims.to_vec())
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        // tanh is a handful of FLOPs; count 8 per element.
        Ok(8 * input_dims.iter().product::<usize>() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]).unwrap();
        let y = relu.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0], &[3]).unwrap();
        relu.forward(&x, Mode::Train).unwrap();
        let g = relu
            .backward(&Tensor::from_vec(vec![10.0, 10.0, 10.0], &[3]).unwrap())
            .unwrap();
        // x == 0 has zero subgradient under the x > 0 convention.
        assert_eq!(g.as_slice(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn relu_backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn relu_backward_rejects_length_mismatch() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::zeros(&[3]), Mode::Train).unwrap();
        assert!(relu.backward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn tanh_gradient_matches_numeric() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_vec(vec![0.3, -0.7], &[2]).unwrap();
        let y = tanh.forward(&x, Mode::Train).unwrap();
        let base = y.sum();
        let dx = tanh.backward(&Tensor::ones(&[2])).unwrap();
        let eps = 1e-3;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let num = (tanh.forward(&xp, Mode::Eval).unwrap().sum() - base) / eps;
            assert!((num - dx.as_slice()[i]).abs() < 1e-3);
        }
    }
}
