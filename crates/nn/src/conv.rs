//! 2-D convolution via im2col.

use fhdnn_tensor::{init, Tensor};
use rand::Rng;

use crate::{Layer, Mode, NnError, Param, Result};

/// Geometry of a convolution: kernel size, stride, and zero padding
/// (square, same in both spatial dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Kernel height and width.
    pub kernel: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Zero padding added on each side.
    pub padding: usize,
}

impl ConvGeometry {
    /// Output spatial size for an input of spatial size `s`.
    ///
    /// Returns `None` if the kernel does not fit.
    pub fn output_size(&self, s: usize) -> Option<usize> {
        let padded = s + 2 * self.padding;
        if padded < self.kernel {
            return None;
        }
        Some((padded - self.kernel) / self.stride + 1)
    }
}

/// A 2-D convolution layer over `[batch, in_c, h, w]` inputs.
///
/// Weights are stored `[out_c, in_c * k * k]`; the forward pass lowers the
/// input to column form (im2col) and performs a single matrix multiply,
/// which is also how the FLOP count is derived.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    cols: Tensor,
    input_dims: Vec<usize>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channels, zero kernel, or
    /// zero stride.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        geom: ConvGeometry,
        rng: &mut R,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 {
            return Err(NnError::InvalidConfig(
                "conv channels must be positive".into(),
            ));
        }
        if geom.kernel == 0 || geom.stride == 0 {
            return Err(NnError::InvalidConfig(
                "conv kernel and stride must be positive".into(),
            ));
        }
        let fan_in = in_channels * geom.kernel * geom.kernel;
        let weight = init::kaiming_normal(&[out_channels, fan_in], fan_in, rng);
        Ok(Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            geom,
            cache: None,
        })
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_dims(&self, dims: &[usize]) -> Result<(usize, usize, usize, usize, usize)> {
        if dims.len() != 4 || dims[1] != self.in_channels {
            return Err(NnError::BadInputShape {
                layer: "Conv2d",
                detail: format!("expected [batch, {}, h, w], got {dims:?}", self.in_channels),
            });
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let oh = self
            .geom
            .output_size(h)
            .ok_or_else(|| NnError::BadInputShape {
                layer: "Conv2d",
                detail: format!("kernel {} does not fit height {h}", self.geom.kernel),
            })?;
        let ow = self
            .geom
            .output_size(w)
            .ok_or_else(|| NnError::BadInputShape {
                layer: "Conv2d",
                detail: format!("kernel {} does not fit width {w}", self.geom.kernel),
            })?;
        Ok((n, h, w, oh, ow))
    }

    /// Lowers `[n, c, h, w]` to columns `[n*oh*ow, c*k*k]`.
    fn im2col(&self, input: &Tensor, n: usize, h: usize, w: usize, oh: usize, ow: usize) -> Tensor {
        let (c, k, s, p) = (
            self.in_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding as isize,
        );
        let x = input.as_slice();
        let mut cols = vec![0.0f32; n * oh * ow * c * k * k];
        let col_w = c * k * k;
        for bi in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * col_w;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let src_base = ((bi * c + ci) * h + iy as usize) * w;
                            let dst_base = row + (ci * k + ky) * k;
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                cols[dst_base + kx] = x[src_base + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(cols, &[n * oh * ow, col_w]).expect("im2col volume")
    }

    /// Scatters column gradients back to input layout (col2im).
    fn col2im(&self, dcols: &Tensor, n: usize, h: usize, w: usize, oh: usize, ow: usize) -> Tensor {
        let (c, k, s, p) = (
            self.in_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding as isize,
        );
        let dc = dcols.as_slice();
        let col_w = c * k * k;
        let mut dx = vec![0.0f32; n * c * h * w];
        for bi in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * col_w;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst_base = ((bi * c + ci) * h + iy as usize) * w;
                            let src_base = row + (ci * k + ky) * k;
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                dx[dst_base + ix as usize] += dc[src_base + kx];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, &[n, c, h, w]).expect("col2im volume")
    }

    /// Reorders `[n*oh*ow, oc]` row-major scores to `[n, oc, oh, ow]`.
    fn rows_to_nchw(mat: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Tensor {
        let m = mat.as_slice();
        let mut out = vec![0.0f32; n * oc * oh * ow];
        for bi in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * oc;
                    for co in 0..oc {
                        out[((bi * oc + co) * oh + oy) * ow + ox] = m[row + co];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, oc, oh, ow]).expect("reorder volume")
    }

    /// Reorders `[n, oc, oh, ow]` gradients back to `[n*oh*ow, oc]` rows.
    fn nchw_to_rows(g: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Tensor {
        let x = g.as_slice();
        let mut out = vec![0.0f32; n * oh * ow * oc];
        for bi in 0..n {
            for co in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        out[(((bi * oh + oy) * ow + ox) * oc) + co] =
                            x[((bi * oc + co) * oh + oy) * ow + ox];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n * oh * ow, oc]).expect("reorder volume")
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, h, w, oh, ow) = self.check_dims(input.dims())?;
        let cols = self.im2col(input, n, h, w, oh, ow);
        let scores = cols
            .matmul_nt(&self.weight.value)?
            .add_row_broadcast(&self.bias.value)?;
        let out = Self::rows_to_nchw(&scores, n, self.out_channels, oh, ow);
        if mode == Mode::Train {
            self.cache = Some(ConvCache {
                cols,
                input_dims: input.dims().to_vec(),
            });
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::MissingForwardCache { layer: "Conv2d" })?;
        let (n, h, w, oh, ow) = self.check_dims(&cache.input_dims)?;
        if grad_output.dims() != [n, self.out_channels, oh, ow] {
            return Err(NnError::BadInputShape {
                layer: "Conv2d",
                detail: format!(
                    "grad shape {:?} != output shape [{n}, {}, {oh}, {ow}]",
                    grad_output.dims(),
                    self.out_channels
                ),
            });
        }
        let g_rows = Self::nchw_to_rows(grad_output, n, self.out_channels, oh, ow);
        // dW = g^T · cols, db = column sums of g, dcols = g · W.
        self.weight
            .grad
            .add_assign(&g_rows.matmul_tn(&cache.cols)?)?;
        self.bias.grad.add_assign(&g_rows.sum_rows()?)?;
        let dcols = g_rows.matmul(&self.weight.value)?;
        Ok(self.col2im(&dcols, n, h, w, oh, ow))
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_params(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        let (n, _, _, oh, ow) = self.check_dims(input_dims)?;
        Ok(vec![n, self.out_channels, oh, ow])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        let out = self.output_dims(input_dims)?;
        let fan_in = (self.in_channels * self.geom.kernel * self.geom.kernel) as u64;
        let positions = (out[0] * out[2] * out[3]) as u64;
        Ok(positions * self.out_channels as u64 * (2 * fan_in + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const G3X3: ConvGeometry = ConvGeometry {
        kernel: 3,
        stride: 1,
        padding: 1,
    };

    #[test]
    fn geometry_output_size() {
        assert_eq!(G3X3.output_size(16), Some(16));
        let g = ConvGeometry {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(g.output_size(16), Some(8));
        let big = ConvGeometry {
            kernel: 7,
            stride: 1,
            padding: 0,
        };
        assert_eq!(big.output_size(4), None);
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, G3X3, &mut rng).unwrap();
        // Set the kernel to a delta at the center: output == input.
        conv.weight.value.map_assign(|_| 0.0);
        conv.weight.value.as_mut_slice()[4] = 1.0;
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_convolution_value() {
        let mut rng = StdRng::seed_from_u64(0);
        let geom = ConvGeometry {
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let mut conv = Conv2d::new(1, 1, geom, &mut rng).unwrap();
        conv.weight
            .value
            .as_mut_slice()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        conv.bias.value.as_mut_slice()[0] = 0.5;
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        )
        .unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        // Window at (0,0): 1*1+2*2+4*3+5*4 = 37, plus bias.
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice()[0], 37.5);
    }

    #[test]
    fn stride_two_downsamples() {
        let mut rng = StdRng::seed_from_u64(1);
        let geom = ConvGeometry {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let mut conv = Conv2d::new(3, 8, geom, &mut rng).unwrap();
        let y = conv
            .forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn forward_rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(3, 4, G3X3, &mut rng).unwrap();
        assert!(conv
            .forward(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval)
            .is_err());
        assert!(conv.forward(&Tensor::zeros(&[8, 8]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(2, 3, G3X3, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let base = y.sum();
        let dx = conv.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-2;
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let yp = conv.forward(&xp, Mode::Eval).unwrap().sum();
            let num = (yp - base) / eps;
            assert!(
                (num - dx.as_slice()[i]).abs() < 0.05,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.as_slice()[i]
            );
        }
        for i in (0..conv.weight.value.len()).step_by(7) {
            let orig = conv.weight.value.as_slice()[i];
            conv.weight.value.as_mut_slice()[i] = orig + eps;
            let yp = conv.forward(&x, Mode::Eval).unwrap().sum();
            conv.weight.value.as_mut_slice()[i] = orig;
            let num = (yp - base) / eps;
            assert!(
                (num - conv.weight.grad.as_slice()[i]).abs() < 0.05,
                "dW[{i}]: numeric {num} vs analytic {}",
                conv.weight.grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, G3X3, &mut rng).unwrap();
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn flops_positive_and_scale_with_batch() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new(3, 16, G3X3, &mut rng).unwrap();
        let f1 = conv.flops(&[1, 3, 16, 16]).unwrap();
        let f2 = conv.flops(&[2, 3, 16, 16]).unwrap();
        assert!(f1 > 0);
        assert_eq!(f2, 2 * f1);
    }
}
