//! Depthwise convolution — the building block of MobileNet-style
//! extractors, which the paper recommends for resource-constrained edge
//! devices (§3.2: "One could use other models such as MobileNet").

use fhdnn_tensor::{init, Tensor};
use rand::Rng;

use crate::conv::ConvGeometry;
use crate::{Layer, Mode, NnError, Param, Result};

/// A depthwise 2-D convolution: each input channel is convolved with its
/// own `k×k` kernel (`groups == channels`), producing the same number of
/// output channels at a fraction of a full convolution's cost.
///
/// Combined with a 1×1 [`crate::conv::Conv2d`] (pointwise), this forms the
/// depthwise-separable block with `k²·C + C·C'` weights instead of
/// `k²·C·C'`.
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    weight: Param,
    bias: Param,
    channels: usize,
    geom: ConvGeometry,
    cache: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution over `channels` feature maps.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channels, kernel, or
    /// stride.
    pub fn new<R: Rng + ?Sized>(channels: usize, geom: ConvGeometry, rng: &mut R) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::InvalidConfig(
                "depthwise channels must be positive".into(),
            ));
        }
        if geom.kernel == 0 || geom.stride == 0 {
            return Err(NnError::InvalidConfig(
                "depthwise kernel and stride must be positive".into(),
            ));
        }
        let fan_in = geom.kernel * geom.kernel;
        let weight = init::kaiming_normal(&[channels, fan_in], fan_in, rng);
        Ok(DepthwiseConv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[channels])),
            channels,
            geom,
            cache: None,
        })
    }

    fn check_dims(&self, dims: &[usize]) -> Result<(usize, usize, usize, usize, usize)> {
        if dims.len() != 4 || dims[1] != self.channels {
            return Err(NnError::BadInputShape {
                layer: "DepthwiseConv2d",
                detail: format!("expected [batch, {}, h, w], got {dims:?}", self.channels),
            });
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let oh = self
            .geom
            .output_size(h)
            .ok_or_else(|| NnError::BadInputShape {
                layer: "DepthwiseConv2d",
                detail: format!("kernel {} does not fit height {h}", self.geom.kernel),
            })?;
        let ow = self
            .geom
            .output_size(w)
            .ok_or_else(|| NnError::BadInputShape {
                layer: "DepthwiseConv2d",
                detail: format!("kernel {} does not fit width {w}", self.geom.kernel),
            })?;
        Ok((n, h, w, oh, ow))
    }
}

impl Layer for DepthwiseConv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "DepthwiseConv2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, h, w, oh, ow) = self.check_dims(input.dims())?;
        let (c, k, s, p) = (
            self.channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding as isize,
        );
        let x = input.as_slice();
        let wgt = self.weight.value.as_slice();
        let bias = self.bias.value.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        for bi in 0..n {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                let kern = &wgt[ci * k * k..(ci + 1) * k * k];
                let o_plane = (bi * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[ci];
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += kern[ky * k + kx] * x[plane + iy as usize * w + ix as usize];
                            }
                        }
                        out[o_plane + oy * ow + ox] = acc;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(input.clone());
        }
        Tensor::from_vec(out, &[n, c, oh, ow]).map_err(Into::into)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self.cache.take().ok_or(NnError::MissingForwardCache {
            layer: "DepthwiseConv2d",
        })?;
        let (n, h, w, oh, ow) = self.check_dims(input.dims())?;
        if grad_output.dims() != [n, self.channels, oh, ow] {
            return Err(NnError::BadInputShape {
                layer: "DepthwiseConv2d",
                detail: format!(
                    "grad shape {:?} != output shape [{n}, {}, {oh}, {ow}]",
                    grad_output.dims(),
                    self.channels
                ),
            });
        }
        let (c, k, s, p) = (
            self.channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding as isize,
        );
        let x = input.as_slice();
        let g = grad_output.as_slice();
        let wgt = self.weight.value.as_slice();
        let dw = self.weight.grad.as_mut_slice();
        let db = self.bias.grad.as_mut_slice();
        let mut dx = vec![0.0f32; x.len()];
        for bi in 0..n {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                let o_plane = (bi * c + ci) * oh * ow;
                let kern = &wgt[ci * k * k..(ci + 1) * k * k];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = g[o_plane + oy * ow + ox];
                        if gv == 0.0 {
                            continue;
                        }
                        db[ci] += gv;
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let src = plane + iy as usize * w + ix as usize;
                                dw[ci * k * k + ky * k + kx] += gv * x[src];
                                dx[src] += gv * kern[ky * k + kx];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, input.dims()).map_err(Into::into)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_params(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        let (n, _, _, oh, ow) = self.check_dims(input_dims)?;
        Ok(vec![n, self.channels, oh, ow])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        let out = self.output_dims(input_dims)?;
        let per_position = (2 * self.geom.kernel * self.geom.kernel + 1) as u64;
        Ok(out.iter().product::<usize>() as u64 * per_position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const G3: ConvGeometry = ConvGeometry {
        kernel: 3,
        stride: 1,
        padding: 1,
    };

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut dw = DepthwiseConv2d::new(2, G3, &mut rng).unwrap();
        dw.weight.value.map_assign(|_| 0.0);
        // Center tap = 1 for both channels.
        dw.weight.value.as_mut_slice()[4] = 1.0;
        dw.weight.value.as_mut_slice()[13] = 1.0;
        let x = Tensor::from_vec((0..32).map(|i| i as f32).collect(), &[1, 2, 4, 4]).unwrap();
        let y = dw.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn channels_do_not_mix() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut dw = DepthwiseConv2d::new(2, G3, &mut rng).unwrap();
        // Zero channel 1's kernel: its output must be exactly the bias.
        for v in dw.weight.value.row_mut(1).unwrap() {
            *v = 0.0;
        }
        dw.bias.value.as_mut_slice()[1] = 0.25;
        let mut x = Tensor::zeros(&[1, 2, 4, 4]);
        // Energize channel 0 only.
        for i in 0..16 {
            x.as_mut_slice()[i] = 1.0;
        }
        let y = dw.forward(&x, Mode::Eval).unwrap();
        assert!(y.as_slice()[16..].iter().all(|&v| v == 0.25));
    }

    #[test]
    fn stride_two_downsamples() {
        let mut rng = StdRng::seed_from_u64(2);
        let geom = ConvGeometry {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let mut dw = DepthwiseConv2d::new(4, geom, &mut rng).unwrap();
        let y = dw
            .forward(&Tensor::zeros(&[2, 4, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut dw = DepthwiseConv2d::new(2, G3, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = dw.forward(&x, Mode::Train).unwrap();
        let base = y.sum();
        let dx = dw.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-2;
        for i in (0..x.len()).step_by(3) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let num = (dw.forward(&xp, Mode::Eval).unwrap().sum() - base) / eps;
            assert!(
                (num - dx.as_slice()[i]).abs() < 0.05,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.as_slice()[i]
            );
        }
        for i in 0..dw.weight.value.len() {
            let orig = dw.weight.value.as_slice()[i];
            dw.weight.value.as_mut_slice()[i] = orig + eps;
            let num = (dw.forward(&x, Mode::Eval).unwrap().sum() - base) / eps;
            dw.weight.value.as_mut_slice()[i] = orig;
            assert!(
                (num - dw.weight.grad.as_slice()[i]).abs() < 0.05,
                "dW[{i}]: numeric {num} vs analytic {}",
                dw.weight.grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn flops_far_below_full_conv() {
        let mut rng = StdRng::seed_from_u64(4);
        let dw = DepthwiseConv2d::new(16, G3, &mut rng).unwrap();
        let full = crate::conv::Conv2d::new(16, 16, G3, &mut rng).unwrap();
        let f_dw = dw.flops(&[1, 16, 8, 8]).unwrap();
        let f_full = full.flops(&[1, 16, 8, 8]).unwrap();
        assert!(f_dw * 8 < f_full, "depthwise {f_dw} vs full {f_full}");
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut dw = DepthwiseConv2d::new(1, G3, &mut rng).unwrap();
        assert!(dw.backward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }
}
