use std::fmt;

use fhdnn_tensor::TensorError;

/// Errors produced by neural-network construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input whose shape it cannot process.
    BadInputShape {
        /// Name of the layer reporting the problem.
        layer: &'static str,
        /// Human-readable description of the expectation.
        detail: String,
    },
    /// `backward` was called before `forward` (no cached activations).
    MissingForwardCache {
        /// Name of the layer reporting the problem.
        layer: &'static str,
    },
    /// A parameter buffer had the wrong length when loading a flattened
    /// model (the federated transport format).
    ParamLengthMismatch {
        /// Number of scalars the network holds.
        expected: usize,
        /// Number of scalars supplied.
        actual: usize,
    },
    /// A configuration argument was invalid (zero sizes, bad strides, …).
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInputShape { layer, detail } => {
                write!(f, "{layer}: bad input shape: {detail}")
            }
            NnError::MissingForwardCache { layer } => {
                write!(f, "{layer}: backward called before forward")
            }
            NnError::ParamLengthMismatch { expected, actual } => write!(
                f,
                "parameter vector length {actual} does not match model size {expected}"
            ),
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_tensor_error() {
        let e = NnError::from(TensorError::RankMismatch {
            expected: 4,
            actual: 2,
        });
        assert!(e.to_string().contains("rank 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
