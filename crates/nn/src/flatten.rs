//! Flattening layer bridging convolutional and dense stacks.

use fhdnn_tensor::Tensor;

use crate::{Layer, Mode, NnError, Result};

/// Flattens `[batch, d1, d2, …]` to `[batch, d1*d2*…]`.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.output_dims(input.dims())?;
        if mode == Mode::Train {
            self.input_dims = Some(input.dims().to_vec());
        }
        input.reshape(&out).map_err(Into::into)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .take()
            .ok_or(NnError::MissingForwardCache { layer: "Flatten" })?;
        grad_output.reshape(&dims).map_err(Into::into)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.is_empty() {
            return Err(NnError::BadInputShape {
                layer: "Flatten",
                detail: "input must have at least a batch dimension".into(),
            });
        }
        Ok(vec![input_dims[0], input_dims[1..].iter().product()])
    }

    fn flops(&self, _input_dims: &[usize]) -> Result<u64> {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = f.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let dx = f.backward(&y).unwrap();
        assert_eq!(dx, x);
    }

    #[test]
    fn backward_requires_forward() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[2, 4])).is_err());
    }
}
