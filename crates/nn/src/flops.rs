//! Training-cost accounting used by the Table 1 edge-device model.
//!
//! The paper's Table 1 compares on-device training time and energy of
//! FHDnn vs ResNet on a Raspberry Pi 3b and an NVIDIA Jetson. We reproduce
//! the comparison analytically: count the floating-point work of one local
//! training pass and divide by a device profile's sustained throughput.

use crate::{Network, Result};

/// Ratio of backward-pass FLOPs to forward-pass FLOPs for CNN training.
///
/// The backward pass computes both input and weight gradients, each about
/// as expensive as the forward pass; 2.0 is the standard estimate.
pub const BACKWARD_TO_FORWARD_RATIO: f64 = 2.0;

/// FLOPs of one full training step (forward + backward + SGD update) for a
/// batch shaped `input_dims`.
///
/// # Errors
///
/// Propagates shape errors from the network's FLOP walk.
pub fn training_flops(net: &Network, input_dims: &[usize]) -> Result<u64> {
    let fwd = net.flops(input_dims)? as f64;
    let update = 2.0 * net.num_params() as f64;
    Ok((fwd * (1.0 + BACKWARD_TO_FORWARD_RATIO) + update) as u64)
}

/// FLOPs of one inference pass for a batch shaped `input_dims`.
///
/// # Errors
///
/// Propagates shape errors from the network's FLOP walk.
pub fn inference_flops(net: &Network, input_dims: &[usize]) -> Result<u64> {
    net.flops(input_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_flops_are_roughly_3x_forward() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Network::new().push(Linear::new(128, 64, &mut rng).unwrap());
        let fwd = inference_flops(&net, &[8, 128]).unwrap();
        let train = training_flops(&net, &[8, 128]).unwrap();
        assert!(train > 3 * fwd - 2 * net.num_params() as u64);
        assert!(train < 4 * fwd);
    }
}
