//! The layer contract: forward, backward, parameters, shapes, FLOPs.

use fhdnn_tensor::Tensor;

use crate::{Param, Result};

/// Whether a forward pass updates training-time statistics.
///
/// Batch normalization behaves differently in the two modes; all other
/// layers ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: use batch statistics, update running averages, cache
    /// activations for backward.
    Train,
    /// Inference: use running statistics, no caching requirements.
    Eval,
}

/// A differentiable network layer with manually implemented backward pass.
///
/// The contract:
///
/// 1. `forward(x, Mode::Train)` must cache whatever `backward` needs.
/// 2. `backward(grad_out)` consumes that cache, **accumulates** parameter
///    gradients into its [`Param::grad`]s, and returns the gradient with
///    respect to the layer input.
/// 3. `params_mut` exposes trainable parameters in a deterministic order —
///    the order defines the flattened federated transport layout.
///
/// Layers are `Send + Sync` and clonable through [`Layer::clone_box`], so
/// a [`crate::Network`] can be shared read-only across round workers and
/// cheaply duplicated per client by the parallel federated engine.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Clones the layer behind the trait object (including parameters,
    /// running state and any cached activations).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Runs the layer on `input`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Back-propagates `grad_output`, returning the gradient w.r.t. the
    /// layer's input and accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingForwardCache`] if called before a
    /// training-mode forward pass, or a shape error if `grad_output` does
    /// not match the cached activation shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Trainable parameters in deterministic order (may be empty).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Read-only visit of the trainable parameters, in the same order as
    /// [`Layer::params_mut`].
    fn visit_params(&self, _visitor: &mut dyn FnMut(&Param)) {}

    /// Output shape for a given input shape (both without modification).
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>>;

    /// Floating-point operations of one forward pass on `input_dims`
    /// (multiply–add counted as two FLOPs). Used by the Table 1 edge-device
    /// cost model.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn flops(&self, input_dims: &[usize]) -> Result<u64>;

    /// Non-trainable running state (e.g. batch-norm statistics) appended
    /// to checkpoints. Most layers have none.
    fn running_state(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Restores the running state written by [`Layer::running_state`].
    ///
    /// # Errors
    ///
    /// Returns an error if `state` has the wrong length for this layer.
    fn load_running_state(&mut self, state: &[f32]) -> Result<()> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(crate::NnError::ParamLengthMismatch {
                expected: 0,
                actual: state.len(),
            })
        }
    }

    /// Length of this layer's running state.
    fn running_state_len(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_is_copy_eq() {
        let m = Mode::Train;
        let n = m;
        assert_eq!(m, n);
        assert_ne!(Mode::Train, Mode::Eval);
    }
}
