//! # fhdnn-nn
//!
//! A from-scratch neural-network framework with manual forward/backward
//! passes, built as the CNN substrate for the FHDnn reproduction (DAC 2022).
//!
//! The paper compares FHDnn against federated averaging over a ResNet. This
//! crate provides everything required to stand up that baseline without any
//! external ML framework:
//!
//! - [`layer::Layer`] — the forward/backward contract,
//! - convolution ([`conv::Conv2d`]), dense ([`linear::Linear`]),
//!   normalization ([`norm::BatchNorm2d`]), activation
//!   ([`activation::Relu`]), pooling ([`pool`]) and residual blocks
//!   ([`residual::ResidualBlock`]),
//! - [`network::Network`] — a sequential container with parameter
//!   flattening/loading (the federated-learning transport format),
//! - [`loss`] — softmax cross-entropy and MSE with analytic gradients,
//! - [`optim::Sgd`] — SGD with momentum and weight decay,
//! - [`models`] — the paper's two architectures: a small CNN for
//!   MNIST-class data and `ResNetLite`, a genuine residual network,
//! - [`flops`] — per-layer FLOP accounting backing the Table 1 cost model.
//!
//! # Example
//!
//! ```
//! use fhdnn_nn::models::small_cnn;
//! use fhdnn_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), fhdnn_nn::NnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = small_cnn(1, 16, 10, &mut rng)?;
//! let x = Tensor::zeros(&[2, 1, 16, 16]);
//! let logits = net.forward(&x, fhdnn_nn::Mode::Eval)?;
//! assert_eq!(logits.dims(), &[2, 10]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod activation;
pub mod conv;
pub mod depthwise;
mod error;
pub mod flatten;
pub mod flops;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod models;
pub mod network;
pub mod norm;
pub mod optim;
mod param;
pub mod pool;
pub mod residual;

pub use error::NnError;
pub use layer::{Layer, Mode};
pub use network::Network;
pub use param::Param;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;
