//! Fully connected (dense) layer.

use fhdnn_tensor::{init, Tensor};
use rand::Rng;

use crate::{Layer, Mode, NnError, Param, Result};

/// A dense layer computing `y = x W^T + b` for `x: [batch, in]`,
/// `W: [out, in]`, `b: [out]`.
///
/// # Example
///
/// ```
/// use fhdnn_nn::linear::Linear;
/// use fhdnn_nn::{Layer, Mode};
/// use fhdnn_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), fhdnn_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(4, 3, &mut rng)?;
/// let y = fc.forward(&Tensor::zeros(&[2, 4]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cache_input: Option<Tensor>,
}

impl Linear {
    /// Creates a dense layer with Kaiming-initialized weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidConfig(format!(
                "linear dimensions must be positive, got {in_features}x{out_features}"
            )));
        }
        let weight = init::kaiming_normal(&[out_features, in_features], in_features, rng);
        Ok(Linear {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cache_input: None,
        })
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.shape().rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::BadInputShape {
                layer: "Linear",
                detail: format!(
                    "expected [batch, {}], got {:?}",
                    self.in_features,
                    input.dims()
                ),
            });
        }
        Ok(())
    }
}

impl Layer for Linear {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.check_input(input)?;
        let out = input
            .matmul_nt(&self.weight.value)?
            .add_row_broadcast(&self.bias.value)?;
        if mode == Mode::Train {
            self.cache_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cache_input
            .take()
            .ok_or(NnError::MissingForwardCache { layer: "Linear" })?;
        // dW = dy^T · x, db = column sums of dy, dx = dy · W.
        let dw = grad_output.matmul_tn(&input)?;
        self.weight.grad.add_assign(&dw)?;
        self.bias.grad.add_assign(&grad_output.sum_rows()?)?;
        Ok(grad_output.matmul(&self.weight.value)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_params(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 2 || input_dims[1] != self.in_features {
            return Err(NnError::BadInputShape {
                layer: "Linear",
                detail: format!("expected [batch, {}], got {input_dims:?}", self.in_features),
            });
        }
        Ok(vec![input_dims[0], self.out_features])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        let out = self.output_dims(input_dims)?;
        // 2 FLOPs per multiply-add, plus bias add.
        Ok((2 * self.in_features as u64 + 1) * (out[0] * out[1]) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Linear {
        let mut rng = StdRng::seed_from_u64(11);
        Linear::new(3, 2, &mut rng).unwrap()
    }

    #[test]
    fn rejects_zero_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Linear::new(0, 2, &mut rng).is_err());
        assert!(Linear::new(2, 0, &mut rng).is_err());
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut fc = layer();
        // Zero the weight: output must equal the bias.
        fc.weight.value.map_assign(|_| 0.0);
        fc.bias.value.as_mut_slice().copy_from_slice(&[1.5, -2.0]);
        let y = fc.forward(&Tensor::ones(&[2, 3]), Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[1.5, -2.0, 1.5, -2.0]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut fc = layer();
        assert!(fc.forward(&Tensor::zeros(&[2, 4]), Mode::Eval).is_err());
        assert!(fc.forward(&Tensor::zeros(&[4]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut fc = layer();
        assert!(matches!(
            fc.backward(&Tensor::zeros(&[2, 2])),
            Err(NnError::MissingForwardCache { .. })
        ));
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut fc = layer();
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5], &[2, 3]).unwrap();
        // Loss = sum(y); dL/dy = ones.
        let y = fc.forward(&x, Mode::Train).unwrap();
        let base: f32 = y.sum();
        let gones = Tensor::ones(&[2, 2]);
        let dx = fc.backward(&gones).unwrap();

        let eps = 1e-3;
        // Check dL/dx numerically.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let yp = fc.forward(&xp, Mode::Eval).unwrap().sum();
            let num = (yp - base) / eps;
            assert!(
                (num - dx.as_slice()[i]).abs() < 1e-2,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.as_slice()[i]
            );
        }
        // Check dL/dW numerically.
        for i in 0..fc.weight.value.len() {
            let orig = fc.weight.value.as_slice()[i];
            fc.weight.value.as_mut_slice()[i] = orig + eps;
            let yp = fc.forward(&x, Mode::Eval).unwrap().sum();
            fc.weight.value.as_mut_slice()[i] = orig;
            let num = (yp - base) / eps;
            assert!(
                (num - fc.weight.grad.as_slice()[i]).abs() < 1e-2,
                "dW[{i}]: numeric {num} vs analytic {}",
                fc.weight.grad.as_slice()[i]
            );
        }
        // Bias gradient of sum loss is the batch size per output.
        assert_eq!(fc.bias.grad.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut fc = layer();
        let x = Tensor::ones(&[1, 3]);
        for _ in 0..2 {
            fc.forward(&x, Mode::Train).unwrap();
            fc.backward(&Tensor::ones(&[1, 2])).unwrap();
        }
        assert_eq!(fc.bias.grad.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn flops_formula() {
        let fc = layer();
        assert_eq!(fc.flops(&[4, 3]).unwrap(), (2 * 3 + 1) * 4 * 2);
    }
}
