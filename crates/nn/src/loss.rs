//! Loss functions with analytic gradients.

use fhdnn_tensor::Tensor;

use crate::{NnError, Result};

/// Loss value plus the gradient with respect to the network output.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits/predictions, shaped
    /// like the network output.
    pub grad: Tensor,
}

/// Numerically stable row-wise softmax of a `[batch, classes]` matrix.
///
/// # Errors
///
/// Returns an error if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadInputShape {
            layer: "softmax",
            detail: format!("expected [batch, classes], got {:?}", logits.dims()),
        });
    }
    let (rows, _cols) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    for r in 0..rows {
        let row = out.row_mut(r)?;
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    Ok(out)
}

/// Mean softmax cross-entropy between logits `[batch, classes]` and integer
/// labels, with the analytic gradient `(softmax - onehot) / batch`.
///
/// # Errors
///
/// Returns an error if shapes disagree or a label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    let probs = softmax(logits)?;
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != rows {
        return Err(NnError::BadInputShape {
            layer: "cross_entropy",
            detail: format!("{} labels for batch of {rows}", labels.len()),
        });
    }
    let mut loss = 0.0;
    let mut grad = probs.clone();
    let scale = 1.0 / rows as f32;
    for (r, &label) in labels.iter().enumerate() {
        if label >= cols {
            return Err(NnError::BadInputShape {
                layer: "cross_entropy",
                detail: format!("label {label} out of range for {cols} classes"),
            });
        }
        let p = probs.row(r)?[label].max(1e-12);
        loss -= p.ln();
        let row = grad.row_mut(r)?;
        row[label] -= 1.0;
        for x in row.iter_mut() {
            *x *= scale;
        }
    }
    Ok(LossOutput {
        loss: loss * scale,
        grad,
    })
}

/// Mean squared error between predictions and targets of equal shape, with
/// gradient `2 (pred - target) / n`.
///
/// # Errors
///
/// Returns an error if shapes disagree.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Result<LossOutput> {
    let diff = pred.sub(target)?;
    let n = diff.len().max(1) as f32;
    Ok(LossOutput {
        loss: diff.norm_sq() / n,
        grad: diff.scale(2.0 / n),
    })
}

/// Fraction of rows whose argmax matches the label.
///
/// # Errors
///
/// Returns an error if `scores` is not `[batch, classes]` with
/// `batch == labels.len()`.
pub fn accuracy(scores: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = scores.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(NnError::BadInputShape {
            layer: "accuracy",
            detail: format!("{} predictions for {} labels", preds.len(), labels.len()),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / labels.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let p = softmax(&logits).unwrap();
        assert!(p.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cross_entropy_perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let out = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(out.loss < 1e-3, "loss {}", out.loss);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(&[1, 4]);
        let out = cross_entropy(&logits, &[2]).unwrap();
        assert!((out.loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.2, -0.6], &[2, 3]).unwrap();
        let labels = [2, 0];
        let out = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let num = (cross_entropy(&lp, &labels).unwrap().loss - out.loss) / eps;
            assert!(
                (num - out.grad.as_slice()[i]).abs() < 1e-3,
                "grad[{i}]: numeric {num} vs analytic {}",
                out.grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn mse_gradient() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let out = mse_loss(&pred, &target).unwrap();
        assert_eq!(out.loss, 2.5);
        assert_eq!(out.grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let scores = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        let acc = accuracy(&scores, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        let scores = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&scores, &[]).unwrap(), 0.0);
    }
}
