//! The paper's two client architectures, scaled to synthetic 16×16 inputs.
//!
//! - [`small_cnn`]: "a simple network consisting of 2 convolution layers
//!   and 2 fully connected layers" (the paper's MNIST model, §4.1);
//! - [`resnet_lite`]: a genuine residual network standing in for ResNet-18
//!   (§4.1 uses ResNet-18 for CIFAR-10 and FashionMNIST). Same topology
//!   family — conv stem, three stages of basic residual blocks with
//!   channel doubling and stride-2 downsampling, global average pooling,
//!   dense classifier — scaled to laptop-size synthetic images.

use rand::Rng;

use crate::activation::Relu;
use crate::conv::{Conv2d, ConvGeometry};
use crate::depthwise::DepthwiseConv2d;
use crate::flatten::Flatten;
use crate::linear::Linear;
use crate::norm::BatchNorm2d;
use crate::pool::{GlobalAvgPool, MaxPool2d};
use crate::residual::ResidualBlock;
use crate::{Network, Result};

/// Builds the paper's MNIST client model: two 3×3 convolutions with ReLU
/// and 2× max pooling, then two dense layers.
///
/// `image_size` must be divisible by 4 (two pooling stages).
///
/// # Errors
///
/// Returns an error for invalid sizes.
pub fn small_cnn<R: Rng + ?Sized>(
    in_channels: usize,
    image_size: usize,
    num_classes: usize,
    rng: &mut R,
) -> Result<Network> {
    let g = ConvGeometry {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let spatial = image_size / 4;
    let net = Network::new()
        .push(Conv2d::new(in_channels, 8, g, rng)?)
        .push(Relu::new())
        .push(MaxPool2d::new(2)?)
        .push(Conv2d::new(8, 16, g, rng)?)
        .push(Relu::new())
        .push(MaxPool2d::new(2)?)
        .push(Flatten::new())
        .push(Linear::new(16 * spatial * spatial, 64, rng)?)
        .push(Relu::new())
        .push(Linear::new(64, num_classes, rng)?);
    Ok(net)
}

/// Configuration for [`resnet_lite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input channels (1 for grayscale, 3 for color).
    pub in_channels: usize,
    /// Base width of the stem; stages use `w`, `2w`, `4w` channels.
    pub base_width: usize,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl Default for ResNetConfig {
    fn default() -> Self {
        ResNetConfig {
            in_channels: 3,
            base_width: 8,
            blocks_per_stage: 2,
            num_classes: 10,
        }
    }
}

/// Builds the `ResNetLite` *trunk*: conv stem + BN + ReLU, three residual
/// stages with stride-2 transitions, and global average pooling — ending at
/// the `[batch, 4 * base_width]` embedding, with no classifier.
///
/// This is the shared backbone of both [`resnet_lite`] (which appends a
/// dense classifier) and SimCLR pretraining (which appends a throwaway
/// projection head and later freezes the trunk as FHDnn's feature
/// extractor).
///
/// # Errors
///
/// Returns an error for invalid configuration values.
pub fn resnet_trunk<R: Rng + ?Sized>(config: ResNetConfig, rng: &mut R) -> Result<Network> {
    let stem_geom = ConvGeometry {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let w = config.base_width;
    let mut net = Network::new()
        .push(Conv2d::new(config.in_channels, w, stem_geom, rng)?)
        .push(BatchNorm2d::new(w)?)
        .push(Relu::new());
    let widths = [w, 2 * w, 4 * w];
    let mut in_c = w;
    for (stage, &out_c) in widths.iter().enumerate() {
        for block in 0..config.blocks_per_stage {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            net.push_boxed(Box::new(ResidualBlock::new(in_c, out_c, stride, rng)?));
            in_c = out_c;
        }
    }
    net.push_boxed(Box::new(GlobalAvgPool::new()));
    Ok(net)
}

/// Builds `ResNetLite`: the [`resnet_trunk`] backbone plus a dense
/// classifier.
///
/// With the default config and 16×16 inputs the network has three stages at
/// 16×16, 8×8 and 4×4 spatial resolution — the ResNet-18 topology family at
/// reproduction scale.
///
/// # Errors
///
/// Returns an error for invalid configuration values.
pub fn resnet_lite<R: Rng + ?Sized>(config: ResNetConfig, rng: &mut R) -> Result<Network> {
    let mut net = resnet_trunk(config, rng)?;
    net.push_boxed(Box::new(Linear::new(
        resnet_feature_width(&config),
        config.num_classes,
        rng,
    )?));
    Ok(net)
}

/// Feature width produced by [`resnet_lite`]'s penultimate layer (the
/// global-average-pooled embedding): `4 * base_width`.
pub fn resnet_feature_width(config: &ResNetConfig) -> usize {
    4 * config.base_width
}

/// Which trunk architecture to build for a feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrunkArch {
    /// Residual blocks ([`resnet_trunk`]) — the paper's primary choice.
    #[default]
    ResNet,
    /// Depthwise-separable blocks ([`mobilenet_trunk`]) — the paper's
    /// suggested alternative for resource-constrained edge devices.
    MobileNet,
}

/// Builds the trunk of the requested architecture; both produce a
/// `[batch, 4 * base_width]` embedding.
///
/// # Errors
///
/// Returns an error for invalid configuration values.
pub fn build_trunk<R: Rng + ?Sized>(
    arch: TrunkArch,
    config: ResNetConfig,
    rng: &mut R,
) -> Result<Network> {
    match arch {
        TrunkArch::ResNet => resnet_trunk(config, rng),
        TrunkArch::MobileNet => mobilenet_trunk(config, rng),
    }
}

/// Builds the `MobileNetLite` trunk: a depthwise-separable alternative to
/// [`resnet_trunk`], as the paper suggests for resource-constrained edge
/// devices (§3.2). The topology mirrors MobileNetV1: conv stem, then
/// depthwise-3×3 / pointwise-1×1 pairs with BN+ReLU, doubling channels and
/// downsampling at stage boundaries, ending in global average pooling.
///
/// The trunk produces the same `[batch, 4 * base_width]` embedding as
/// [`resnet_trunk`], so the two are drop-in interchangeable extractors.
///
/// # Errors
///
/// Returns an error for invalid configuration values.
pub fn mobilenet_trunk<R: Rng + ?Sized>(config: ResNetConfig, rng: &mut R) -> Result<Network> {
    let stem_geom = ConvGeometry {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let pw_geom = ConvGeometry {
        kernel: 1,
        stride: 1,
        padding: 0,
    };
    let w = config.base_width;
    let mut net = Network::new()
        .push(Conv2d::new(config.in_channels, w, stem_geom, rng)?)
        .push(BatchNorm2d::new(w)?)
        .push(Relu::new());
    let widths = [w, 2 * w, 4 * w];
    let mut in_c = w;
    for (stage, &out_c) in widths.iter().enumerate() {
        for block in 0..config.blocks_per_stage {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let dw_geom = ConvGeometry {
                kernel: 3,
                stride,
                padding: 1,
            };
            net.push_boxed(Box::new(DepthwiseConv2d::new(in_c, dw_geom, rng)?));
            net.push_boxed(Box::new(BatchNorm2d::new(in_c)?));
            net.push_boxed(Box::new(Relu::new()));
            net.push_boxed(Box::new(Conv2d::new(in_c, out_c, pw_geom, rng)?));
            net.push_boxed(Box::new(BatchNorm2d::new(out_c)?));
            net.push_boxed(Box::new(Relu::new()));
            in_c = out_c;
        }
    }
    net.push_boxed(Box::new(GlobalAvgPool::new()));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use crate::optim::Sgd;
    use crate::Mode;
    use fhdnn_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_cnn_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = small_cnn(1, 16, 10, &mut rng).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[3, 1, 16, 16]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[3, 10]);
    }

    #[test]
    fn resnet_lite_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = ResNetConfig::default();
        let mut net = resnet_lite(cfg, &mut rng).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        assert!(net.num_params() > 10_000, "has {} params", net.num_params());
    }

    #[test]
    fn resnet_lite_trains_on_tiny_task() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ResNetConfig {
            in_channels: 1,
            base_width: 4,
            blocks_per_stage: 1,
            num_classes: 2,
        };
        let mut net = resnet_lite(cfg, &mut rng).unwrap();
        let mut opt = Sgd::new(0.05).momentum(0.9);
        // Two trivially separable "images": all-bright vs all-dark.
        let x = Tensor::concat_first_axis(&[
            &Tensor::full(&[2, 1, 8, 8], 1.0),
            &Tensor::full(&[2, 1, 8, 8], -1.0),
        ])
        .unwrap();
        let labels = [0usize, 0, 1, 1];
        let mut last = f32::MAX;
        for _ in 0..30 {
            net.zero_grad();
            let logits = net.forward(&x, Mode::Train).unwrap();
            let out = cross_entropy(&logits, &labels).unwrap();
            net.backward(&out.grad).unwrap();
            opt.step(&mut net).unwrap();
            last = out.loss;
        }
        assert!(last < 0.4, "loss after training: {last}");
    }

    #[test]
    fn resnet_flops_exceed_small_cnn() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = small_cnn(3, 16, 10, &mut rng).unwrap();
        let resnet = resnet_lite(ResNetConfig::default(), &mut rng).unwrap();
        let fs = small.flops(&[1, 3, 16, 16]).unwrap();
        let fr = resnet.flops(&[1, 3, 16, 16]).unwrap();
        assert!(fr > fs, "resnet {fr} vs small {fs}");
    }

    #[test]
    fn mobilenet_trunk_shapes_and_cost() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = ResNetConfig::default();
        let mut mobile = mobilenet_trunk(cfg, &mut rng).unwrap();
        let y = mobile
            .forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, resnet_feature_width(&cfg)]);
        // The depthwise-separable trunk must be cheaper than the residual
        // trunk at the same width - MobileNet's whole point.
        let resnet = resnet_trunk(cfg, &mut rng).unwrap();
        let fm = mobile.flops(&[1, 3, 16, 16]).unwrap();
        let fr = resnet.flops(&[1, 3, 16, 16]).unwrap();
        assert!(fm * 2 < fr, "mobilenet {fm} vs resnet {fr}");
    }

    #[test]
    fn feature_width_matches_last_stage() {
        let cfg = ResNetConfig::default();
        assert_eq!(resnet_feature_width(&cfg), 32);
    }
}
