//! Sequential network container with federated parameter transport.

use fhdnn_tensor::Tensor;

use crate::{Layer, Mode, NnError, Param, Result};

/// A feed-forward stack of layers executed in order.
///
/// Besides forward/backward, `Network` provides the federated-learning
/// transport surface: [`Network::flatten_params`] serializes every
/// trainable scalar into one `Vec<f32>` (the "model update" a client
/// transmits) and [`Network::load_params`] restores it — byte-for-byte the
/// object that the paper's channels corrupt.
#[derive(Debug)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs all layers in order.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Back-propagates through all layers in reverse order, accumulating
    /// parameter gradients, and returns the input gradient.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (including missing forward caches).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// All trainable parameters in deterministic (layer, intra-layer) order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Read-only parameter walk in the same order as
    /// [`Network::params_mut`].
    pub fn visit_params(&self, visitor: &mut dyn FnMut(&Param)) {
        for layer in &self.layers {
            layer.visit_params(visitor);
        }
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars — the model's "update size" in
    /// the paper's communication accounting.
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Serializes every trainable scalar into one row-major vector.
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |p| out.extend_from_slice(p.value.as_slice()));
        out
    }

    /// Restores parameters from a flattened vector produced by
    /// [`Network::flatten_params`] on an identically-structured network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] if `flat` has the wrong
    /// length.
    pub fn load_params(&mut self, flat: &[f32]) -> Result<()> {
        let expected = self.num_params();
        if flat.len() != expected {
            return Err(NnError::ParamLengthMismatch {
                expected,
                actual: flat.len(),
            });
        }
        let mut offset = 0;
        for p in self.params_mut() {
            let n = p.len();
            p.value
                .as_mut_slice()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        Ok(())
    }

    /// Serializes all running (non-trainable) state — batch-norm
    /// statistics — in layer order.
    pub fn running_state(&self) -> Vec<f32> {
        self.layers.iter().flat_map(|l| l.running_state()).collect()
    }

    /// Restores running state written by [`Network::running_state`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] if `state` has the wrong
    /// total length.
    pub fn load_running_state(&mut self, state: &[f32]) -> Result<()> {
        let expected: usize = self.layers.iter().map(|l| l.running_state_len()).sum();
        if state.len() != expected {
            return Err(NnError::ParamLengthMismatch {
                expected,
                actual: state.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            let n = layer.running_state_len();
            layer.load_running_state(&state[offset..offset + n])?;
            offset += n;
        }
        Ok(())
    }

    /// Output shape after all layers for a given input shape.
    ///
    /// # Errors
    ///
    /// Propagates the first layer shape error.
    pub fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        let mut dims = input_dims.to_vec();
        for layer in &self.layers {
            dims = layer.output_dims(&dims)?;
        }
        Ok(dims)
    }

    /// FLOPs of one forward pass over `input_dims` summed over layers.
    ///
    /// # Errors
    ///
    /// Propagates the first layer shape error.
    pub fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        let mut dims = input_dims.to_vec();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.flops(&dims)?;
            dims = layer.output_dims(&dims)?;
        }
        Ok(total)
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new()
            .push(Linear::new(4, 8, &mut rng).unwrap())
            .push(Relu::new())
            .push(Linear::new(8, 3, &mut rng).unwrap())
    }

    #[test]
    fn forward_shapes() {
        let mut net = tiny_net(0);
        let y = net.forward(&Tensor::zeros(&[5, 4]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[5, 3]);
        assert_eq!(net.output_dims(&[5, 4]).unwrap(), vec![5, 3]);
    }

    #[test]
    fn num_params_counts_all_layers() {
        let net = tiny_net(0);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn flatten_load_roundtrip() {
        let mut a = tiny_net(1);
        let mut b = tiny_net(2);
        let x = Tensor::ones(&[1, 4]);
        let ya = a.forward(&x, Mode::Eval).unwrap();
        assert_ne!(
            ya,
            b.forward(&x, Mode::Eval).unwrap(),
            "different seeds give different nets"
        );
        b.load_params(&a.flatten_params()).unwrap();
        assert_eq!(b.forward(&x, Mode::Eval).unwrap(), ya);
    }

    #[test]
    fn load_rejects_wrong_length() {
        let mut net = tiny_net(0);
        assert!(matches!(
            net.load_params(&[0.0; 3]),
            Err(NnError::ParamLengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = tiny_net(0);
        net.forward(&Tensor::ones(&[2, 4]), Mode::Train).unwrap();
        net.backward(&Tensor::ones(&[2, 3])).unwrap();
        let had_grad = net
            .params_mut()
            .iter()
            .any(|p| p.grad.as_slice().iter().any(|&g| g != 0.0));
        assert!(had_grad);
        net.zero_grad();
        for p in net.params_mut() {
            assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        }
    }

    #[test]
    fn running_state_empty_for_stateless_nets() {
        let mut net = tiny_net(0);
        assert!(net.running_state().is_empty());
        assert!(net.load_running_state(&[]).is_ok());
        assert!(net.load_running_state(&[1.0]).is_err());
    }

    #[test]
    fn flops_accumulate() {
        let net = tiny_net(0);
        let f = net.flops(&[1, 4]).unwrap();
        assert_eq!(f, (2 * 4 + 1) * 8 + 8 + (2 * 8 + 1) * 3);
    }
}
