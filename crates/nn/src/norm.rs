//! Batch normalization.

use fhdnn_tensor::Tensor;

use crate::{Layer, Mode, NnError, Param, Result};

/// Per-channel batch normalization over `[batch, c, h, w]` activations.
///
/// Training mode normalizes with batch statistics and maintains running
/// averages; evaluation mode uses the running averages. Gamma and beta are
/// trainable and participate in the federated parameter vector, exactly as
/// BatchNorm parameters do in the paper's ResNet baseline.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `channels == 0`.
    pub fn new(channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::InvalidConfig(
                "batchnorm channels must be positive".into(),
            ));
        }
        Ok(BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        })
    }

    fn check_dims(&self, dims: &[usize]) -> Result<(usize, usize, usize, usize)> {
        if dims.len() != 4 || dims[1] != self.channels {
            return Err(NnError::BadInputShape {
                layer: "BatchNorm2d",
                detail: format!("expected [batch, {}, h, w], got {dims:?}", self.channels),
            });
        }
        Ok((dims[0], dims[1], dims[2], dims[3]))
    }
}

impl Layer for BatchNorm2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, h, w) = self.check_dims(input.dims())?;
        let plane = h * w;
        let count = (n * plane) as f32;
        let x = input.as_slice();
        let mut out = vec![0.0f32; x.len()];

        match mode {
            Mode::Train => {
                let mut x_hat = vec![0.0f32; x.len()];
                let mut inv_stds = vec![0.0f32; c];
                #[allow(clippy::needless_range_loop)] // ci also indexes x/out planes
                for ci in 0..c {
                    let mut mean = 0.0;
                    for bi in 0..n {
                        let base = ((bi * c + ci) * plane)..((bi * c + ci + 1) * plane);
                        mean += x[base].iter().sum::<f32>();
                    }
                    mean /= count;
                    let mut var = 0.0;
                    for bi in 0..n {
                        let base = (bi * c + ci) * plane;
                        for &v in &x[base..base + plane] {
                            var += (v - mean) * (v - mean);
                        }
                    }
                    var /= count;
                    let inv_std = 1.0 / (var + self.eps).sqrt();
                    inv_stds[ci] = inv_std;
                    let (g, b) = (
                        self.gamma.value.as_slice()[ci],
                        self.beta.value.as_slice()[ci],
                    );
                    for bi in 0..n {
                        let base = (bi * c + ci) * plane;
                        for i in base..base + plane {
                            let xh = (x[i] - mean) * inv_std;
                            x_hat[i] = xh;
                            out[i] = g * xh + b;
                        }
                    }
                    let m = self.momentum;
                    self.running_mean.as_mut_slice()[ci] =
                        (1.0 - m) * self.running_mean.as_slice()[ci] + m * mean;
                    self.running_var.as_mut_slice()[ci] =
                        (1.0 - m) * self.running_var.as_slice()[ci] + m * var;
                }
                self.cache = Some(BnCache {
                    x_hat: Tensor::from_vec(x_hat, input.dims())?,
                    inv_std: inv_stds,
                    input_dims: input.dims().to_vec(),
                });
            }
            Mode::Eval => {
                for ci in 0..c {
                    let mean = self.running_mean.as_slice()[ci];
                    let inv_std = 1.0 / (self.running_var.as_slice()[ci] + self.eps).sqrt();
                    let (g, b) = (
                        self.gamma.value.as_slice()[ci],
                        self.beta.value.as_slice()[ci],
                    );
                    for bi in 0..n {
                        let base = (bi * c + ci) * plane;
                        for i in base..base + plane {
                            out[i] = g * (x[i] - mean) * inv_std + b;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, input.dims()).map_err(Into::into)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self.cache.take().ok_or(NnError::MissingForwardCache {
            layer: "BatchNorm2d",
        })?;
        if grad_output.dims() != cache.input_dims.as_slice() {
            return Err(NnError::BadInputShape {
                layer: "BatchNorm2d",
                detail: format!(
                    "grad shape {:?} != cached input shape {:?}",
                    grad_output.dims(),
                    cache.input_dims
                ),
            });
        }
        let (n, c, h, w) = self.check_dims(&cache.input_dims)?;
        let plane = h * w;
        let count = (n * plane) as f32;
        let g_out = grad_output.as_slice();
        let x_hat = cache.x_hat.as_slice();
        let mut dx = vec![0.0f32; g_out.len()];

        for ci in 0..c {
            // Per-channel reductions: dgamma = Σ g·x̂, dbeta = Σ g.
            let mut dgamma = 0.0;
            let mut dbeta = 0.0;
            for bi in 0..n {
                let base = (bi * c + ci) * plane;
                for i in base..base + plane {
                    dgamma += g_out[i] * x_hat[i];
                    dbeta += g_out[i];
                }
            }
            self.gamma.grad.as_mut_slice()[ci] += dgamma;
            self.beta.grad.as_mut_slice()[ci] += dbeta;

            // Standard batchnorm input gradient:
            // dx = γ·inv_std/m · (m·g − Σg − x̂·Σ(g·x̂))
            let gamma = self.gamma.value.as_slice()[ci];
            let scale = gamma * cache.inv_std[ci] / count;
            for bi in 0..n {
                let base = (bi * c + ci) * plane;
                for i in base..base + plane {
                    dx[i] = scale * (count * g_out[i] - dbeta - x_hat[i] * dgamma);
                }
            }
        }
        Tensor::from_vec(dx, &cache.input_dims).map_err(Into::into)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn visit_params(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.gamma);
        visitor(&self.beta);
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        self.check_dims(input_dims)?;
        Ok(input_dims.to_vec())
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        self.check_dims(input_dims)?;
        // Normalize + affine: ~4 FLOPs per element.
        Ok(4 * input_dims.iter().product::<usize>() as u64)
    }

    fn running_state(&self) -> Vec<f32> {
        let mut out = self.running_mean.as_slice().to_vec();
        out.extend_from_slice(self.running_var.as_slice());
        out
    }

    fn load_running_state(&mut self, state: &[f32]) -> Result<()> {
        if state.len() != 2 * self.channels {
            return Err(NnError::ParamLengthMismatch {
                expected: 2 * self.channels,
                actual: state.len(),
            });
        }
        self.running_mean
            .as_mut_slice()
            .copy_from_slice(&state[..self.channels]);
        self.running_var
            .as_mut_slice()
            .copy_from_slice(&state[self.channels..]);
        Ok(())
    }

    fn running_state_len(&self) -> usize {
        2 * self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[4, 2, 3, 3], 3.0, &mut rng).add_scalar(5.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel mean ~0, var ~1.
        for ci in 0..2 {
            let mut vals = Vec::new();
            for bi in 0..4 {
                for i in 0..9 {
                    vals.push(y.as_slice()[(bi * 2 + ci) * 9 + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Warm running stats with many training passes.
        for _ in 0..200 {
            let x = Tensor::randn(&[8, 1, 2, 2], 2.0, &mut rng).add_scalar(3.0);
            bn.forward(&x, Mode::Train).unwrap();
        }
        let x = Tensor::full(&[1, 1, 2, 2], 3.0);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        // Input at the running mean should map near zero.
        assert!(y.as_slice().iter().all(|v| v.abs() < 0.2), "{y}");
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        bn.gamma.value.as_mut_slice().copy_from_slice(&[1.3, 0.7]);
        bn.beta.value.as_mut_slice().copy_from_slice(&[0.2, -0.1]);
        let x = Tensor::randn(&[2, 2, 2, 2], 1.0, &mut rng);
        // Quadratic loss L = Σ y² to exercise nontrivial gradients.
        let y = bn.forward(&x, Mode::Train).unwrap();
        let g = y.scale(2.0);
        let dx = bn.backward(&g).unwrap();
        let base: f32 = y.as_slice().iter().map(|v| v * v).sum();

        let eps = 1e-3;
        for i in (0..x.len()).step_by(3) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            // Use a fresh layer with identical affine params so running
            // stats don't drift between evaluations.
            let mut bn2 = BatchNorm2d::new(2).unwrap();
            bn2.gamma.value = bn.gamma.value.clone();
            bn2.beta.value = bn.beta.value.clone();
            let yp = bn2.forward(&xp, Mode::Train).unwrap();
            let lp: f32 = yp.as_slice().iter().map(|v| v * v).sum();
            let num = (lp - base) / eps;
            assert!(
                (num - dx.as_slice()[i]).abs() < 0.05,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut bn = BatchNorm2d::new(3).unwrap();
        assert!(bn
            .forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Train)
            .is_err());
        assert!(BatchNorm2d::new(0).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        assert!(bn.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn running_state_roundtrip() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let x = Tensor::randn(&[4, 2, 2, 2], 2.0, &mut rng).add_scalar(1.0);
            bn.forward(&x, Mode::Train).unwrap();
        }
        let state = bn.running_state();
        assert_eq!(state.len(), 4);
        let mut fresh = BatchNorm2d::new(2).unwrap();
        fresh.load_running_state(&state).unwrap();
        let x = Tensor::randn(&[1, 2, 2, 2], 1.0, &mut rng);
        // Copy affine params too so eval outputs match exactly.
        fresh.gamma.value = bn.gamma.value.clone();
        fresh.beta.value = bn.beta.value.clone();
        assert_eq!(
            fresh.forward(&x, Mode::Eval).unwrap(),
            bn.forward(&x, Mode::Eval).unwrap()
        );
        assert!(fresh.load_running_state(&[0.0]).is_err());
    }
}
