//! Optimizers and learning-rate schedules.

use fhdnn_tensor::Tensor;

use crate::{Network, NnError, Result};

/// A learning-rate schedule over federated rounds (or epochs).
///
/// # Example
///
/// ```
/// use fhdnn_nn::optim::LrSchedule;
///
/// let sched = LrSchedule::StepDecay { every: 10, factor: 0.5 };
/// assert_eq!(sched.lr_at(0, 0.1), 0.1);
/// assert_eq!(sched.lr_at(10, 0.1), 0.05);
/// assert_eq!(sched.lr_at(25, 0.1), 0.025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// The base rate forever.
    #[default]
    Constant,
    /// Multiply by `factor` every `every` steps.
    StepDecay {
        /// Steps between decays (must be positive).
        every: usize,
        /// Multiplicative factor per decay.
        factor: f32,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total` steps,
    /// then held at `min_lr`.
    Cosine {
        /// Steps in the annealing window.
        total: usize,
        /// Terminal learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` given a base rate.
    ///
    /// # Panics
    ///
    /// Panics if a `StepDecay` has `every == 0` or a `Cosine` has
    /// `total == 0`.
    pub fn lr_at(&self, step: usize, base: f32) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "step decay interval must be positive");
                base * factor.powi((step / every) as i32)
            }
            LrSchedule::Cosine { total, min_lr } => {
                assert!(total > 0, "cosine window must be positive");
                if step >= total {
                    return min_lr;
                }
                let t = step as f32 / total as f32;
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// Stochastic gradient descent with momentum and weight decay — the local
/// optimizer run by each federated client in the CNN baseline.
///
/// # Example
///
/// ```
/// use fhdnn_nn::optim::Sgd;
///
/// let opt = Sgd::new(0.1).momentum(0.9).weight_decay(1e-4);
/// assert_eq!(opt.learning_rate(), 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient (builder style).
    #[must_use]
    pub fn momentum(mut self, m: f32) -> Self {
        self.momentum = m;
        self
    }

    /// Sets the L2 weight-decay coefficient (builder style).
    #[must_use]
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (e.g. for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `net` using the
    /// gradients accumulated since the last [`Network::zero_grad`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the network's parameter count
    /// changed since the optimizer first saw it (momentum state would be
    /// misaligned).
    pub fn step(&mut self, net: &mut Network) -> Result<()> {
        let params = net.params_mut();
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.dims()))
                .collect();
        } else if self.velocity.len() != params.len() {
            return Err(NnError::InvalidConfig(format!(
                "optimizer state holds {} tensors but network has {} parameters",
                self.velocity.len(),
                params.len()
            )));
        }
        for (p, v) in params.into_iter().zip(&mut self.velocity) {
            if v.dims() != p.value.dims() {
                return Err(NnError::InvalidConfig(
                    "parameter shape changed under the optimizer".into(),
                ));
            }
            for i in 0..p.value.len() {
                let g = p.grad.as_slice()[i] + self.weight_decay * p.value.as_slice()[i];
                let vel = self.momentum * v.as_slice()[i] + g;
                v.as_mut_slice()[i] = vel;
                p.value.as_mut_slice()[i] -= self.lr * vel;
            }
        }
        Ok(())
    }

    /// Discards momentum state (used when a client receives a fresh global
    /// model at the start of a federated round).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::loss::cross_entropy;
    use crate::Mode;
    use fhdnn_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new().push(Linear::new(2, 2, &mut rng).unwrap())
    }

    #[test]
    fn schedules_decay_as_specified() {
        let step = LrSchedule::StepDecay {
            every: 5,
            factor: 0.1,
        };
        assert!((step.lr_at(4, 1.0) - 1.0).abs() < 1e-6);
        assert!((step.lr_at(5, 1.0) - 0.1).abs() < 1e-6);
        assert!((step.lr_at(14, 1.0) - 0.01).abs() < 1e-6);

        let cos = LrSchedule::Cosine {
            total: 10,
            min_lr: 0.01,
        };
        assert!((cos.lr_at(0, 0.1) - 0.1).abs() < 1e-6);
        assert!((cos.lr_at(10, 0.1) - 0.01).abs() < 1e-6);
        assert!((cos.lr_at(100, 0.1) - 0.01).abs() < 1e-6);
        // Monotone decreasing inside the window.
        for t in 0..9 {
            assert!(cos.lr_at(t, 0.1) >= cos.lr_at(t + 1, 0.1));
        }
        assert_eq!(LrSchedule::Constant.lr_at(42, 0.3), 0.3);
        assert_eq!(LrSchedule::default(), LrSchedule::Constant);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut n = net(0);
        let mut opt = Sgd::new(0.5);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let labels = [0usize, 1usize];
        let first = cross_entropy(&n.forward(&x, Mode::Train).unwrap(), &labels)
            .unwrap()
            .loss;
        for _ in 0..50 {
            n.zero_grad();
            let logits = n.forward(&x, Mode::Train).unwrap();
            let out = cross_entropy(&logits, &labels).unwrap();
            n.backward(&out.grad).unwrap();
            opt.step(&mut n).unwrap();
        }
        let last = cross_entropy(&n.forward(&x, Mode::Eval).unwrap(), &labels)
            .unwrap()
            .loss;
        assert!(last < first * 0.2, "loss {first} -> {last}");
    }

    #[test]
    fn momentum_accelerates_on_quadratic() {
        // One linear scalar parameter, MSE-style gradient; momentum should
        // reach a smaller loss in the same steps on this smooth problem.
        fn run(momentum: f32) -> f32 {
            let mut n = net(1);
            let mut opt = Sgd::new(0.05).momentum(momentum);
            let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
            let labels = [1usize];
            for _ in 0..20 {
                n.zero_grad();
                let logits = n.forward(&x, Mode::Train).unwrap();
                let out = cross_entropy(&logits, &labels).unwrap();
                n.backward(&out.grad).unwrap();
                opt.step(&mut n).unwrap();
            }
            cross_entropy(&n.forward(&x, Mode::Eval).unwrap(), &labels)
                .unwrap()
                .loss
        }
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut n = net(2);
        let before: f32 = n.flatten_params().iter().map(|x| x * x).sum();
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        // No data gradient: only decay acts.
        n.zero_grad();
        opt.step(&mut n).unwrap();
        let after: f32 = n.flatten_params().iter().map(|x| x * x).sum();
        assert!(after < before);
    }

    #[test]
    fn reset_state_allows_new_network() {
        let mut a = net(0);
        let mut opt = Sgd::new(0.1).momentum(0.9);
        a.zero_grad();
        opt.step(&mut a).unwrap();
        opt.reset_state();
        let mut b = net(3);
        b.zero_grad();
        assert!(opt.step(&mut b).is_ok());
    }
}
