use fhdnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: a value tensor and its accumulated gradient.
///
/// Layers own their `Param`s; optimizers visit them through
/// [`crate::Layer::params_mut`].
///
/// # Example
///
/// ```
/// use fhdnn_nn::Param;
/// use fhdnn_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2, 2]));
/// assert_eq!(p.grad.sum(), 0.0);
/// p.zero_grad();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to `value`, accumulated by the
    /// layer's backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zero gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = 0.0;
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` if the parameter holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[3]));
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad.as_mut_slice()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }
}
