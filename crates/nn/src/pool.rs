//! Spatial pooling layers.

use fhdnn_tensor::Tensor;

use crate::{Layer, Mode, NnError, Result};

/// Non-overlapping max pooling over `[batch, c, h, w]` with a square window.
///
/// `h` and `w` must be divisible by the window size.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    argmax: Vec<usize>,
    input_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool with the given square window.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `window == 0`.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NnError::InvalidConfig(
                "pool window must be positive".into(),
            ));
        }
        Ok(MaxPool2d {
            window,
            cache: None,
        })
    }

    fn check_dims(&self, dims: &[usize]) -> Result<(usize, usize, usize, usize)> {
        if dims.len() != 4 {
            return Err(NnError::BadInputShape {
                layer: "MaxPool2d",
                detail: format!("expected rank-4 NCHW input, got {dims:?}"),
            });
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if h % self.window != 0 || w % self.window != 0 {
            return Err(NnError::BadInputShape {
                layer: "MaxPool2d",
                detail: format!(
                    "spatial dims {h}x{w} not divisible by window {}",
                    self.window
                ),
            });
        }
        Ok((n, c, h, w))
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, h, w) = self.check_dims(input.dims())?;
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        let x = input.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; out.len()];
        for nc in 0..n * c {
            let plane = &x[nc * h * w..(nc + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_idx = (oy * k) * w + ox * k;
                    let mut best = plane[best_idx];
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = (oy * k + ky) * w + (ox * k + kx);
                            if plane[idx] > best {
                                best = plane[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = nc * oh * ow + oy * ow + ox;
                    out[o] = best;
                    argmax[o] = nc * h * w + best_idx;
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(PoolCache {
                argmax,
                input_dims: input.dims().to_vec(),
            });
        }
        Tensor::from_vec(out, &[n, c, oh, ow]).map_err(Into::into)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::MissingForwardCache { layer: "MaxPool2d" })?;
        if grad_output.len() != cache.argmax.len() {
            return Err(NnError::BadInputShape {
                layer: "MaxPool2d",
                detail: "grad length does not match pooled output".into(),
            });
        }
        let mut dx = Tensor::zeros(&cache.input_dims);
        let d = dx.as_mut_slice();
        for (&src, &g) in cache.argmax.iter().zip(grad_output.as_slice()) {
            d[src] += g;
        }
        Ok(dx)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        let (n, c, h, w) = self.check_dims(input_dims)?;
        Ok(vec![n, c, h / self.window, w / self.window])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        // One comparison per input element.
        self.check_dims(input_dims)?;
        Ok(input_dims.iter().product::<usize>() as u64)
    }
}

/// Global average pooling: `[batch, c, h, w] -> [batch, c]`.
///
/// This is the ResNet head that feeds the final classifier — and, in FHDnn,
/// the feature vector handed to the hyperdimensional encoder.
#[derive(Debug, Default, Clone)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let dims = input.dims();
        if dims.len() != 4 {
            return Err(NnError::BadInputShape {
                layer: "GlobalAvgPool",
                detail: format!("expected rank-4 NCHW input, got {dims:?}"),
            });
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let area = (h * w) as f32;
        let x = input.as_slice();
        let mut out = vec![0.0f32; n * c];
        for (nc, o) in out.iter_mut().enumerate() {
            *o = x[nc * h * w..(nc + 1) * h * w].iter().sum::<f32>() / area;
        }
        if mode == Mode::Train {
            self.input_dims = Some(dims.to_vec());
        }
        Tensor::from_vec(out, &[n, c]).map_err(Into::into)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self.input_dims.take().ok_or(NnError::MissingForwardCache {
            layer: "GlobalAvgPool",
        })?;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if grad_output.dims() != [n, c] {
            return Err(NnError::BadInputShape {
                layer: "GlobalAvgPool",
                detail: format!("grad shape {:?} != [{n}, {c}]", grad_output.dims()),
            });
        }
        let area = (h * w) as f32;
        let g = grad_output.as_slice();
        let mut dx = vec![0.0f32; n * c * h * w];
        for nc in 0..n * c {
            let v = g[nc] / area;
            for d in &mut dx[nc * h * w..(nc + 1) * h * w] {
                *d = v;
            }
        }
        Tensor::from_vec(dx, &dims).map_err(Into::into)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 4 {
            return Err(NnError::BadInputShape {
                layer: "GlobalAvgPool",
                detail: format!("expected rank-4 NCHW input, got {input_dims:?}"),
            });
        }
        Ok(vec![input_dims[0], input_dims[1]])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        self.output_dims(input_dims)?;
        Ok(input_dims.iter().product::<usize>() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_known_values() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&x, Mode::Train).unwrap();
        let dx = pool
            .backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap())
            .unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_rejects_indivisible() {
        let mut pool = MaxPool2d::new(2).unwrap();
        assert!(pool
            .forward(&Tensor::zeros(&[1, 1, 3, 4]), Mode::Eval)
            .is_err());
    }

    #[test]
    fn gap_averages_planes() {
        let mut gap = GlobalAvgPool::new();
        let x =
            Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]).unwrap();
        let y = gap.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[4.0, 2.0]);
    }

    #[test]
    fn gap_backward_spreads_gradient() {
        let mut gap = GlobalAvgPool::new();
        gap.forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Train)
            .unwrap();
        let dx = gap
            .backward(&Tensor::from_vec(vec![8.0], &[1, 1]).unwrap())
            .unwrap();
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_backward_requires_forward() {
        let mut pool = MaxPool2d::new(2).unwrap();
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
        let mut gap = GlobalAvgPool::new();
        assert!(gap.backward(&Tensor::zeros(&[1, 1])).is_err());
    }
}
