//! Residual blocks — the defining component of the paper's ResNet baseline.

use fhdnn_tensor::Tensor;
use rand::Rng;

use crate::activation::Relu;
use crate::conv::{Conv2d, ConvGeometry};
use crate::norm::BatchNorm2d;
use crate::{Layer, Mode, NnError, Param, Result};

/// A basic two-convolution residual block:
///
/// ```text
/// x ── conv3x3 ── bn ── relu ── conv3x3 ── bn ──(+)── relu ── y
///  └───────────── shortcut (identity or 1x1 conv+bn) ──┘
/// ```
///
/// When `stride > 1` or the channel count changes, the shortcut is a
/// strided 1×1 convolution followed by batch norm, as in ResNet-18.
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    relu_out: Relu,
}

impl ResidualBlock {
    /// Creates a residual block mapping `in_channels` to `out_channels`
    /// with the given stride on the first convolution.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channels or stride.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let g1 = ConvGeometry {
            kernel: 3,
            stride,
            padding: 1,
        };
        let g2 = ConvGeometry {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let shortcut = if stride != 1 || in_channels != out_channels {
            let gs = ConvGeometry {
                kernel: 1,
                stride,
                padding: 0,
            };
            Some((
                Conv2d::new(in_channels, out_channels, gs, rng)?,
                BatchNorm2d::new(out_channels)?,
            ))
        } else {
            None
        };
        Ok(ResidualBlock {
            conv1: Conv2d::new(in_channels, out_channels, g1, rng)?,
            bn1: BatchNorm2d::new(out_channels)?,
            relu1: Relu::new(),
            conv2: Conv2d::new(out_channels, out_channels, g2, rng)?,
            bn2: BatchNorm2d::new(out_channels)?,
            shortcut,
            relu_out: Relu::new(),
        })
    }
}

impl Layer for ResidualBlock {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "ResidualBlock"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let main = self.conv1.forward(input, mode)?;
        let main = self.bn1.forward(&main, mode)?;
        let main = self.relu1.forward(&main, mode)?;
        let main = self.conv2.forward(&main, mode)?;
        let main = self.bn2.forward(&main, mode)?;
        let skip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(input, mode)?;
                bn.forward(&s, mode)?
            }
            None => input.clone(),
        };
        let sum = main.add(&skip)?;
        self.relu_out.forward(&sum, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let g_sum = self.relu_out.backward(grad_output)?;
        // Main path.
        let g = self.bn2.backward(&g_sum)?;
        let g = self.conv2.backward(&g)?;
        let g = self.relu1.backward(&g)?;
        let g = self.bn1.backward(&g)?;
        let mut dx = self.conv1.backward(&g)?;
        // Shortcut path.
        let g_skip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let g = bn.backward(&g_sum)?;
                conv.backward(&g)?
            }
            None => g_sum,
        };
        dx.add_assign(&g_skip).map_err(NnError::from)?;
        Ok(dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.conv1.params_mut();
        ps.extend(self.bn1.params_mut());
        ps.extend(self.conv2.params_mut());
        ps.extend(self.bn2.params_mut());
        if let Some((conv, bn)) = &mut self.shortcut {
            ps.extend(conv.params_mut());
            ps.extend(bn.params_mut());
        }
        ps
    }

    fn visit_params(&self, visitor: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(visitor);
        self.bn1.visit_params(visitor);
        self.conv2.visit_params(visitor);
        self.bn2.visit_params(visitor);
        if let Some((conv, bn)) = &self.shortcut {
            conv.visit_params(visitor);
            bn.visit_params(visitor);
        }
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        self.conv1.output_dims(input_dims)
    }

    fn running_state(&self) -> Vec<f32> {
        let mut out = self.bn1.running_state();
        out.extend(self.bn2.running_state());
        if let Some((_, bn)) = &self.shortcut {
            out.extend(bn.running_state());
        }
        out
    }

    fn load_running_state(&mut self, state: &[f32]) -> Result<()> {
        if state.len() != self.running_state_len() {
            return Err(crate::NnError::ParamLengthMismatch {
                expected: self.running_state_len(),
                actual: state.len(),
            });
        }
        let n1 = self.bn1.running_state_len();
        let n2 = self.bn2.running_state_len();
        self.bn1.load_running_state(&state[..n1])?;
        self.bn2.load_running_state(&state[n1..n1 + n2])?;
        if let Some((_, bn)) = &mut self.shortcut {
            bn.load_running_state(&state[n1 + n2..])?;
        }
        Ok(())
    }

    fn running_state_len(&self) -> usize {
        self.bn1.running_state_len()
            + self.bn2.running_state_len()
            + self
                .shortcut
                .as_ref()
                .map_or(0, |(_, bn)| bn.running_state_len())
    }

    fn flops(&self, input_dims: &[usize]) -> Result<u64> {
        let mid = self.conv1.output_dims(input_dims)?;
        let mut total = self.conv1.flops(input_dims)?
            + self.bn1.flops(&mid)?
            + self.relu1.flops(&mid)?
            + self.conv2.flops(&mid)?
            + self.bn2.flops(&mid)?;
        if let Some((conv, bn)) = &self.shortcut {
            total += conv.flops(input_dims)? + bn.flops(&mid)?;
        }
        // Elementwise add + final relu.
        total += 2 * mid.iter().product::<usize>() as u64;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_block_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = ResidualBlock::new(8, 8, 1, &mut rng).unwrap();
        let y = block
            .forward(&Tensor::zeros(&[2, 8, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        assert_eq!(block.params_mut().len(), 8, "2 convs + 2 bns, no shortcut");
    }

    #[test]
    fn downsample_block_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut block = ResidualBlock::new(8, 16, 2, &mut rng).unwrap();
        let y = block
            .forward(&Tensor::zeros(&[2, 8, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 16, 4, 4]);
        assert_eq!(block.params_mut().len(), 12, "plus 1x1 conv + bn shortcut");
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut block = ResidualBlock::new(2, 2, 1, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        let base = y.sum();
        let dx = block.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 5e-3;
        for i in (0..x.len()).step_by(11) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            // Fresh block with copied params so BN batch stats are consistent.
            let mut b2 = ResidualBlock::new(2, 2, 1, &mut StdRng::seed_from_u64(2)).unwrap();
            let src: Vec<Tensor> = {
                let mut v = Vec::new();
                block.visit_params(&mut |p| v.push(p.value.clone()));
                v
            };
            for (dst, s) in b2.params_mut().into_iter().zip(src) {
                dst.value = s;
            }
            let yp = b2.forward(&xp, Mode::Train).unwrap().sum();
            let num = (yp - base) / eps;
            assert!(
                (num - dx.as_slice()[i]).abs() < 0.1,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn visit_params_matches_params_mut_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut block = ResidualBlock::new(4, 8, 2, &mut rng).unwrap();
        let mut lens = Vec::new();
        block.visit_params(&mut |p| lens.push(p.len()));
        let lens_mut: Vec<usize> = block.params_mut().iter().map(|p| p.len()).collect();
        assert_eq!(lens, lens_mut);
    }
}
