//! Randomized gradient verification across layer types and network
//! compositions: every analytic backward pass is checked against central
//! finite differences on random configurations.

use fhdnn_nn::activation::{Relu, Tanh};
use fhdnn_nn::conv::{Conv2d, ConvGeometry};
use fhdnn_nn::depthwise::DepthwiseConv2d;
use fhdnn_nn::linear::Linear;
use fhdnn_nn::loss::{cross_entropy, softmax};
use fhdnn_nn::pool::{GlobalAvgPool, MaxPool2d};
use fhdnn_nn::{Layer, Mode, Network};
use fhdnn_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Central-difference check of `dL/dx` for `L = Σ w ⊙ y` with a random
/// weighting `w` (more sensitive than a plain sum).
fn check_input_gradient(layer: &mut dyn Layer, x: &Tensor, seed: u64, tol: f32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let y = layer.forward(x, Mode::Train).unwrap();
    let w = Tensor::rand_uniform(y.dims(), -1.0, 1.0, &mut rng);
    let dx = layer.backward(&w).unwrap();
    let eps = 1e-2;
    for i in (0..x.len()).step_by((x.len() / 12).max(1)) {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let yp = layer.forward(&xp, Mode::Eval).unwrap();
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let ym = layer.forward(&xm, Mode::Eval).unwrap();
        let num = (yp.mul(&w).unwrap().sum() - ym.mul(&w).unwrap().sum()) / (2.0 * eps);
        assert!(
            (num - dx.as_slice()[i]).abs() < tol,
            "{}: dx[{i}] numeric {num} vs analytic {}",
            layer.name(),
            dx.as_slice()[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn linear_gradients(seed in 0u64..1000, inputs in 2usize..8, outputs in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(inputs, outputs, &mut rng).unwrap();
        let x = Tensor::randn(&[3, inputs], 1.0, &mut rng);
        check_input_gradient(&mut layer, &x, seed, 0.05);
    }

    #[test]
    fn conv_gradients(seed in 0u64..1000, channels in 1usize..3, stride in 1usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let geom = ConvGeometry { kernel: 3, stride, padding: 1 };
        let mut layer = Conv2d::new(channels, 2, geom, &mut rng).unwrap();
        let x = Tensor::randn(&[2, channels, 6, 6], 1.0, &mut rng);
        check_input_gradient(&mut layer, &x, seed, 0.08);
    }

    #[test]
    fn depthwise_gradients(seed in 0u64..1000, channels in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let geom = ConvGeometry { kernel: 3, stride: 1, padding: 1 };
        let mut layer = DepthwiseConv2d::new(channels, geom, &mut rng).unwrap();
        let x = Tensor::randn(&[2, channels, 5, 5], 1.0, &mut rng);
        check_input_gradient(&mut layer, &x, seed, 0.08);
    }

    #[test]
    fn activation_gradients(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[4, 6], 1.0, &mut rng);
        // ReLU's kink makes finite differences unreliable near 0; nudge
        // values away from the origin.
        let x = x.map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        check_input_gradient(&mut Relu::new(), &x, seed, 0.05);
        check_input_gradient(&mut Tanh::new(), &x, seed, 0.05);
    }

    #[test]
    fn pooling_gradients(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Max pooling is non-differentiable at window ties, where finite
        // differences flip the argmax: use a random permutation of
        // well-separated values so every window has a unique, stable max.
        use rand::seq::SliceRandom;
        let mut values: Vec<f32> = (0..64).map(|i| i as f32 * 0.1).collect();
        values.shuffle(&mut rng);
        let x = Tensor::from_vec(values, &[2, 2, 4, 4]).unwrap();
        check_input_gradient(&mut MaxPool2d::new(2).unwrap(), &x, seed, 0.05);
        check_input_gradient(&mut GlobalAvgPool::new(), &x, seed, 0.05);
    }

    #[test]
    fn softmax_rows_are_distributions(
        seed in 0u64..1000, rows in 1usize..5, cols in 2usize..8
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::randn(&[rows, cols], 3.0, &mut rng);
        let p = softmax(&logits).unwrap();
        for r in 0..rows {
            let row = p.row(r).unwrap();
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_bounded_by_uniform_plus(
        seed in 0u64..1000, classes in 2usize..8
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::randn(&[4, classes], 1.0, &mut rng);
        let labels: Vec<usize> = (0..4).map(|i| i % classes).collect();
        let out = cross_entropy(&logits, &labels).unwrap();
        prop_assert!(out.loss >= 0.0);
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for r in 0..4 {
            let s: f32 = out.grad.row(r).unwrap().iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn network_gradient_composes(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new()
            .push(Linear::new(5, 6, &mut rng).unwrap())
            .push(Tanh::new())
            .push(Linear::new(6, 3, &mut rng).unwrap());
        let x = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let logits = net.forward(&x, Mode::Train).unwrap();
        let out = cross_entropy(&logits, &[0, 2]).unwrap();
        let dx = net.backward(&out.grad).unwrap();
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let lp = cross_entropy(&net.forward(&xp, Mode::Eval).unwrap(), &[0, 2])
                .unwrap()
                .loss;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lm = cross_entropy(&net.forward(&xm, Mode::Eval).unwrap(), &[0, 2])
                .unwrap()
                .loss;
            let num = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (num - dx.as_slice()[i]).abs() < 0.02,
                "dx[{}] numeric {} vs analytic {}", i, num, dx.as_slice()[i]
            );
        }
    }
}
