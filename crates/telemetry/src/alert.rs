//! Rule-based alerting over per-round health samples.
//!
//! The flight-recorder layers (hdc/federated) compute *signals*; this
//! module decides when a signal is *bad*. An [`AlertEngine`] is fed one
//! [`HealthSample`] per round and applies six rules:
//!
//! 1. **Accuracy drop** — test accuracy fell by at least
//!    [`AlertConfig::accuracy_drop`] below the best accuracy seen within
//!    the trailing [`AlertConfig::accuracy_window`] rounds (critical).
//! 2. **Saturation** — quantizer counter-saturation fraction at or above
//!    [`AlertConfig::saturation`] (warning; critical at twice the
//!    threshold).
//! 3. **Client outlier** — some client's update-divergence |z-score| at or
//!    above [`AlertConfig::client_z`] (warning).
//! 4. **Erasure spike** — dims erased this round exceed both an absolute
//!    floor and a multiple of the trailing mean (warning).
//! 5. **Memory growth** — per-round peak heap bytes exceed both an
//!    absolute floor and a multiple of the trailing-window mean peak,
//!    the flight-recorder shape of a server-side leak (warning).
//! 6. **Trace drops** — the bounded trace ring evicted task rows this
//!    round; bounded buffers must degrade loudly, because a silent
//!    eviction means the replay view lies about what ran (warning).
//!
//! The engine is pure state-machine logic: [`AlertEngine::observe`]
//! returns the alerts that fired and never touches a recorder, so rules
//! are unit-testable without sinks. [`emit_alerts`] lowers fired alerts to
//! structured `alert` events on a [`crate::Recorder`] for the JSONL
//! stream, where the `fhdnn watch` dashboard picks them up.

use crate::event::FieldValue;
use crate::registry;
use crate::Recorder;

/// Thresholds for the alert rules. [`AlertConfig::default`] gives
/// conservative values tuned for the reproduction's quick campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertConfig {
    /// Minimum accuracy fall (absolute, e.g. `0.15` = 15 points) below the
    /// trailing-window best that fires the accuracy-drop rule.
    pub accuracy_drop: f64,
    /// Trailing window, in rounds, over which the best accuracy is taken.
    pub accuracy_window: usize,
    /// Counter-saturation fraction that fires the saturation rule; twice
    /// this value escalates to [`Severity::Critical`]. Trained HD
    /// prototypes are near-bipolar, so a healthy quantized model already
    /// parks ~30% of its counters at the clip — the default threshold
    /// sits above that floor and fires only on genuine clip crowding.
    pub saturation: f64,
    /// |z-score| of a client's update divergence that flags it an outlier.
    pub client_z: f64,
    /// An erasure spike must exceed `dims_erased_factor ×` the trailing
    /// mean erasures per round…
    pub dims_erased_factor: f64,
    /// …and this absolute floor, so noisy near-zero rounds never fire.
    pub dims_erased_min: u64,
    /// A memory-growth round must peak above `mem_growth_factor ×` the
    /// mean peak of the trailing [`AlertConfig::mem_growth_window`]
    /// rounds…
    pub mem_growth_factor: f64,
    /// Trailing window, in rounds, over which the mean peak is taken.
    pub mem_growth_window: usize,
    /// …and above this absolute floor, so small-fixture runs (tests,
    /// smoke campaigns) whose peaks jitter by a few KiB never fire.
    pub mem_growth_min_bytes: u64,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            accuracy_drop: 0.15,
            accuracy_window: 3,
            saturation: 0.5,
            client_z: 3.0,
            dims_erased_factor: 4.0,
            dims_erased_min: 64,
            mem_growth_factor: 1.25,
            mem_growth_window: 4,
            mem_growth_min_bytes: 32 * 1024 * 1024,
        }
    }
}

/// How bad a fired alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Degradation worth watching: the run is still making progress.
    Warning,
    /// The round's model is likely damaged or the run is diverging.
    Critical,
}

impl Severity {
    /// Lowercase wire name, used in `alert` event fields.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One per-round health observation, as fed to [`AlertEngine::observe`].
///
/// Fields the caller cannot compute (e.g. saturation on a float transport)
/// should be left at their zero defaults; the corresponding rules then
/// never fire.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthSample {
    /// Round index (0-based).
    pub round: u64,
    /// Global-model test accuracy after the round.
    pub accuracy: f64,
    /// Counter-saturation fraction of the quantized global model, `[0,1]`.
    pub saturation: f64,
    /// Largest per-client update-divergence |z-score| this round.
    pub max_client_abs_z: f64,
    /// Hypervector dimensions erased by the channel this round.
    pub dims_erased: u64,
    /// Peak heap bytes above the round-start level (tracked-allocator
    /// watermark); `0` when memory accounting is unavailable.
    pub mem_peak_bytes: u64,
    /// Task traces evicted from the bounded trace ring this round.
    pub trace_drops: u64,
}

/// A fired alert: which rule, how bad, and the numbers behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Rule identifier: `accuracy_drop`, `saturation`, `client_outlier`,
    /// `erasure_spike`, `mem_growth`, or `trace_drops`.
    pub rule: &'static str,
    /// Escalation level.
    pub severity: Severity,
    /// Round the alert fired on.
    pub round: u64,
    /// The observed value that tripped the rule.
    pub value: f64,
    /// The threshold it tripped against.
    pub threshold: f64,
    /// Human-readable firing context.
    pub message: String,
}

/// The alert state machine: holds trailing history and applies the rules
/// round by round.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    config: AlertConfig,
    /// Trailing accuracies, most recent last (bounded by the window).
    accuracy: Vec<f64>,
    /// Total dims erased across observed rounds, for the trailing mean.
    erased_sum: u64,
    /// Number of rounds observed so far.
    rounds_seen: u64,
    /// Trailing per-round peak heap bytes, most recent last (bounded by
    /// the memory-growth window).
    mem_peaks: Vec<u64>,
}

impl AlertEngine {
    /// An engine with explicit thresholds.
    pub fn new(config: AlertConfig) -> Self {
        AlertEngine {
            config,
            accuracy: Vec::new(),
            erased_sum: 0,
            rounds_seen: 0,
            mem_peaks: Vec::new(),
        }
    }

    /// The engine's thresholds.
    pub fn config(&self) -> &AlertConfig {
        &self.config
    }

    /// Feeds one round's sample; returns the alerts that fired on it (in
    /// rule order, possibly empty).
    pub fn observe(&mut self, sample: &HealthSample) -> Vec<Alert> {
        let cfg = &self.config;
        let mut fired = Vec::new();

        // Accuracy drop vs the best of the trailing window.
        if let Some(best) = self
            .accuracy
            .iter()
            .copied()
            .fold(None::<f64>, |m, a| Some(m.map_or(a, |m| m.max(a))))
        {
            let drop = best - sample.accuracy;
            if drop >= cfg.accuracy_drop {
                fired.push(Alert {
                    rule: "accuracy_drop",
                    severity: Severity::Critical,
                    round: sample.round,
                    value: drop,
                    threshold: cfg.accuracy_drop,
                    message: format!(
                        "accuracy {:.3} is {:.3} below the {}-round best {:.3}",
                        sample.accuracy,
                        drop,
                        self.accuracy.len(),
                        best
                    ),
                });
            }
        }

        // Quantizer saturation.
        if cfg.saturation > 0.0 && sample.saturation >= cfg.saturation {
            let severity = if sample.saturation >= 2.0 * cfg.saturation {
                Severity::Critical
            } else {
                Severity::Warning
            };
            fired.push(Alert {
                rule: "saturation",
                severity,
                round: sample.round,
                value: sample.saturation,
                threshold: cfg.saturation,
                message: format!(
                    "{:.1}% of quantized counters sit at the clip range (threshold {:.1}%)",
                    100.0 * sample.saturation,
                    100.0 * cfg.saturation
                ),
            });
        }

        // Client-divergence outlier.
        if cfg.client_z > 0.0 && sample.max_client_abs_z >= cfg.client_z {
            fired.push(Alert {
                rule: "client_outlier",
                severity: Severity::Warning,
                round: sample.round,
                value: sample.max_client_abs_z,
                threshold: cfg.client_z,
                message: format!(
                    "a client's update diverges at |z| = {:.2} (threshold {:.2})",
                    sample.max_client_abs_z, cfg.client_z
                ),
            });
        }

        // Erasure spike vs the trailing mean.
        if self.rounds_seen > 0 && sample.dims_erased >= cfg.dims_erased_min {
            let mean = self.erased_sum as f64 / self.rounds_seen as f64;
            let floor = cfg.dims_erased_factor * mean;
            if sample.dims_erased as f64 > floor {
                fired.push(Alert {
                    rule: "erasure_spike",
                    severity: Severity::Warning,
                    round: sample.round,
                    value: sample.dims_erased as f64,
                    threshold: floor.max(cfg.dims_erased_min as f64),
                    message: format!(
                        "{} dims erased vs trailing mean {:.1}/round",
                        sample.dims_erased, mean
                    ),
                });
            }
        }

        // Memory growth vs the trailing mean peak. A leak shows up as
        // each round peaking higher than the ones before it; a one-off
        // large round against a calm history also trips, which is the
        // desired flight-recorder behaviour (something held memory it
        // normally would not).
        if !self.mem_peaks.is_empty() && sample.mem_peak_bytes >= cfg.mem_growth_min_bytes {
            let mean = self.mem_peaks.iter().sum::<u64>() as f64 / self.mem_peaks.len() as f64;
            let floor = cfg.mem_growth_factor * mean;
            if sample.mem_peak_bytes as f64 > floor {
                fired.push(Alert {
                    rule: "mem_growth",
                    severity: Severity::Warning,
                    round: sample.round,
                    value: sample.mem_peak_bytes as f64,
                    threshold: floor.max(cfg.mem_growth_min_bytes as f64),
                    message: format!(
                        "round peaked at {} vs trailing mean {}/round",
                        crate::mem::fmt_bytes(sample.mem_peak_bytes),
                        crate::mem::fmt_bytes(mean as u64)
                    ),
                });
            }
        }

        // Trace-ring evictions: any eviction fires. There is no tunable
        // threshold — a bounded buffer that overflowed has already lost
        // data, and the only healthy count is zero.
        if sample.trace_drops > 0 {
            fired.push(Alert {
                rule: "trace_drops",
                severity: Severity::Warning,
                round: sample.round,
                value: sample.trace_drops as f64,
                threshold: 0.0,
                message: format!(
                    "{} task traces evicted from the bounded trace ring; raise its capacity or the replay view is incomplete",
                    sample.trace_drops
                ),
            });
        }

        // Roll the trailing state forward.
        self.accuracy.push(sample.accuracy);
        if self.accuracy.len() > self.config.accuracy_window {
            self.accuracy.remove(0);
        }
        self.erased_sum = self.erased_sum.saturating_add(sample.dims_erased);
        self.rounds_seen += 1;
        self.mem_peaks.push(sample.mem_peak_bytes);
        if self.mem_peaks.len() > self.config.mem_growth_window {
            self.mem_peaks.remove(0);
        }
        fired
    }
}

impl Default for AlertEngine {
    fn default() -> Self {
        AlertEngine::new(AlertConfig::default())
    }
}

/// Lowers fired alerts to structured `alert` events on `tel`, one event
/// per alert with `rule`, `severity`, `round`, `value`, `threshold`, and
/// `message` fields. No-op on a disabled recorder or an empty slice.
pub fn emit_alerts(tel: &Recorder, alerts: &[Alert]) {
    if !tel.enabled() {
        return;
    }
    for a in alerts {
        tel.event(
            registry::EVENT_ALERT,
            &[
                ("rule", FieldValue::Str(a.rule.to_string())),
                ("severity", FieldValue::Str(a.severity.as_str().to_string())),
                ("round", FieldValue::U64(a.round)),
                ("value", FieldValue::F64(a.value)),
                ("threshold", FieldValue::F64(a.threshold)),
                ("message", FieldValue::Str(a.message.clone())),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    fn sample(round: u64, accuracy: f64) -> HealthSample {
        HealthSample {
            round,
            accuracy,
            ..HealthSample::default()
        }
    }

    #[test]
    fn steady_run_fires_nothing() {
        let mut eng = AlertEngine::default();
        for r in 0..10 {
            let fired = eng.observe(&sample(r, 0.80 + 0.01 * r as f64));
            assert!(fired.is_empty(), "round {r}: {fired:?}");
        }
    }

    #[test]
    fn accuracy_drop_fires_against_window_best() {
        let mut eng = AlertEngine::default();
        for r in 0..3 {
            assert!(eng.observe(&sample(r, 0.85)).is_empty());
        }
        let fired = eng.observe(&sample(3, 0.60));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "accuracy_drop");
        assert_eq!(fired[0].severity, Severity::Critical);
        assert!((fired[0].value - 0.25).abs() < 1e-9);
        // The window rolls: after enough low rounds the drop stops firing
        // because the old high accuracy ages out.
        let mut quiet = false;
        for r in 4..10 {
            if eng.observe(&sample(r, 0.60)).is_empty() {
                quiet = true;
                break;
            }
        }
        assert!(quiet, "drop alert should age out of the window");
    }

    #[test]
    fn first_round_never_fires_accuracy_drop() {
        let mut eng = AlertEngine::default();
        assert!(eng.observe(&sample(0, 0.0)).is_empty());
    }

    #[test]
    fn saturation_escalates_to_critical() {
        let mut eng = AlertEngine::default();
        let warn = eng.observe(&HealthSample {
            saturation: 0.55,
            ..HealthSample::default()
        });
        assert_eq!(warn.len(), 1);
        assert_eq!(warn[0].rule, "saturation");
        assert_eq!(warn[0].severity, Severity::Warning);
        let crit = eng.observe(&HealthSample {
            round: 1,
            saturation: 1.0,
            ..HealthSample::default()
        });
        assert_eq!(crit[0].severity, Severity::Critical);
        // A healthy near-bipolar HD model parks ~30% of counters at the
        // clip; that must stay below the threshold.
        assert!(eng
            .observe(&HealthSample {
                round: 2,
                saturation: 0.30,
                ..HealthSample::default()
            })
            .is_empty());
    }

    #[test]
    fn client_outlier_fires_on_z() {
        let mut eng = AlertEngine::default();
        let fired = eng.observe(&HealthSample {
            max_client_abs_z: 3.5,
            ..HealthSample::default()
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "client_outlier");
    }

    #[test]
    fn erasure_spike_needs_history_and_floor() {
        let mut eng = AlertEngine::default();
        // Round 0: no history yet, even a big erasure count cannot spike.
        assert!(eng
            .observe(&HealthSample {
                dims_erased: 10_000,
                ..HealthSample::default()
            })
            .is_empty());
        // Trailing mean is now huge; a similar round is not a spike.
        assert!(eng
            .observe(&HealthSample {
                round: 1,
                dims_erased: 9_000,
                ..HealthSample::default()
            })
            .is_empty());
        // A fresh engine with a calm history fires on a sudden burst…
        let mut calm = AlertEngine::default();
        for r in 0..3 {
            assert!(calm
                .observe(&HealthSample {
                    round: r,
                    dims_erased: 2,
                    ..HealthSample::default()
                })
                .is_empty());
        }
        let fired = calm.observe(&HealthSample {
            round: 3,
            dims_erased: 500,
            ..HealthSample::default()
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "erasure_spike");
        // …but a burst below the absolute floor stays quiet.
        let mut tiny = AlertEngine::default();
        assert!(tiny.observe(&HealthSample::default()).is_empty());
        assert!(tiny
            .observe(&HealthSample {
                round: 1,
                dims_erased: 63,
                ..HealthSample::default()
            })
            .is_empty());
    }

    #[test]
    fn multiple_rules_fire_together_in_order() {
        let mut eng = AlertEngine::default();
        for r in 0..2 {
            eng.observe(&sample(r, 0.9));
        }
        let fired = eng.observe(&HealthSample {
            round: 2,
            accuracy: 0.2,
            saturation: 0.9,
            max_client_abs_z: 5.0,
            dims_erased: 0,
            mem_peak_bytes: 0,
            trace_drops: 7,
        });
        let rules: Vec<&str> = fired.iter().map(|a| a.rule).collect();
        assert_eq!(
            rules,
            [
                "accuracy_drop",
                "saturation",
                "client_outlier",
                "trace_drops"
            ]
        );
    }

    #[test]
    fn trace_drops_fires_on_any_eviction() {
        let mut eng = AlertEngine::default();
        assert!(eng.observe(&HealthSample::default()).is_empty());
        let fired = eng.observe(&HealthSample {
            round: 1,
            trace_drops: 1,
            ..HealthSample::default()
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "trace_drops");
        assert_eq!(fired[0].severity, Severity::Warning);
        assert_eq!(fired[0].value, 1.0);
    }

    #[test]
    fn mem_growth_fires_above_trailing_mean() {
        let mut eng = AlertEngine::default();
        let mib = 1024 * 1024;
        // A flat history of 64 MiB peaks stays quiet.
        for r in 0..4 {
            assert!(eng
                .observe(&HealthSample {
                    round: r,
                    mem_peak_bytes: 64 * mib,
                    ..HealthSample::default()
                })
                .is_empty());
        }
        // A round peaking well above factor × mean fires the rule.
        let fired = eng.observe(&HealthSample {
            round: 4,
            mem_peak_bytes: 128 * mib,
            ..HealthSample::default()
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "mem_growth");
        assert_eq!(fired[0].severity, Severity::Warning);
        assert!(fired[0].message.contains("MiB"), "{}", fired[0].message);
    }

    #[test]
    fn mem_growth_respects_absolute_floor_and_history() {
        // Round 0 has no trailing history: even a huge peak cannot fire.
        let mut eng = AlertEngine::default();
        assert!(eng
            .observe(&HealthSample {
                mem_peak_bytes: 1 << 40,
                ..HealthSample::default()
            })
            .is_empty());
        // Tiny test-scale peaks jitter far below the 32 MiB floor and
        // must never fire, no matter how sharp the relative growth.
        let mut tiny = AlertEngine::default();
        assert!(tiny
            .observe(&HealthSample {
                mem_peak_bytes: 1024,
                ..HealthSample::default()
            })
            .is_empty());
        assert!(tiny
            .observe(&HealthSample {
                round: 1,
                mem_peak_bytes: 512 * 1024,
                ..HealthSample::default()
            })
            .is_empty());
    }

    #[test]
    fn emit_lowers_alerts_to_events() {
        let sink = Arc::new(MemorySink::new());
        let tel = Recorder::with_sink(sink.clone());
        let mut eng = AlertEngine::default();
        let fired = eng.observe(&HealthSample {
            saturation: 0.6,
            ..HealthSample::default()
        });
        emit_alerts(&tel, &fired);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "alert");
        let json = events[0].to_json();
        assert!(json.contains("\"rule\":\"saturation\""), "{json}");
        assert!(json.contains("\"severity\":\"warning\""), "{json}");
        // Disabled recorders swallow everything.
        emit_alerts(&Recorder::disabled(), &fired);
    }
}
