//! Injectable time sources.
//!
//! All telemetry timestamps flow through the [`Clock`] trait so that tests
//! (and reproducibility harnesses) can substitute a deterministic clock:
//! with a [`ManualClock`] two identical runs produce byte-identical
//! JSON-lines output, timestamps included.

use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source reporting microseconds since an arbitrary
/// origin (the recorder's creation for the system clock, zero for manual
/// clocks).
pub trait Clock: Debug + Send + Sync {
    /// Current time in microseconds since the clock's origin.
    fn now_micros(&self) -> u64;
}

/// The real monotonic clock, anchored at its own creation.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock anchored at now.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A deterministic clock: every [`Clock::now_micros`] call advances time by
/// a fixed step, so a seeded run emits an identical timestamp sequence on
/// every execution.
#[derive(Debug)]
pub struct ManualClock {
    now: AtomicU64,
    step: u64,
}

impl ManualClock {
    /// Creates a clock starting at zero that advances `step_micros` on
    /// every reading.
    pub fn new(step_micros: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(0),
            step: step_micros,
        }
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Clock for ManualClock {
    // ORDERING: Relaxed — readings only need to be unique and monotonic
    // per the RMW's atomicity; no memory is published with a timestamp.
    fn now_micros(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::new(10);
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.now_micros(), 10);
        assert_eq!(c.now_micros(), 20);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
