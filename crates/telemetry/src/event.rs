//! The telemetry event model and its JSON-lines wire form.
//!
//! Every observation the [`crate::Recorder`] makes is lowered to an
//! [`Event`] and handed to the active sink. On the JSON-lines sink each
//! event is one line:
//!
//! ```json
//! {"ts":1234,"kind":"span","name":"round.local_train","fields":{"micros":812}}
//! {"ts":1290,"kind":"counter","name":"fl.bytes_up","fields":{"delta":40960,"total":81920}}
//! ```
//!
//! The wire form is produced by a small hand-rolled serializer so that the
//! crate stays free of external dependencies; the shape is fixed and the
//! field map is a `BTreeMap`, making output key order deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed timed span; `fields.micros` holds its duration.
    Span,
    /// A counter increment; `fields.delta` and `fields.total`.
    Counter,
    /// A gauge update; `fields.value`.
    Gauge,
    /// A histogram observation; `fields.value`.
    Hist,
    /// A free-form point event with arbitrary fields.
    Event,
}

impl EventKind {
    /// The lowercase wire name of the kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Hist => "hist",
            EventKind::Event => "event",
        }
    }
}

/// A field value: unsigned integer, float, or string.
///
/// Serializes as a plain JSON scalar (untagged).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer field.
    U64(u64),
    /// A floating-point field.
    F64(f64),
    /// A string field.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl FieldValue {
    /// Appends the JSON form of the value to `out`.
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            // JSON has no NaN/Infinity literal; map non-finite values to
            // null rather than emitting an unparseable line.
            FieldValue::F64(v) if !v.is_finite() => out.push_str("null"),
            FieldValue::F64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Str(s) => write_json_string(out, s),
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One telemetry observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the recorder's clock origin.
    pub ts: u64,
    /// Event class.
    pub kind: EventKind,
    /// Dotted event name, e.g. `round.transmit` or `fl.bytes_up`.
    pub name: String,
    /// Named scalar payload; `BTreeMap` keeps the wire order stable.
    pub fields: BTreeMap<String, FieldValue>,
}

impl Event {
    /// Builds an event from a field slice.
    pub fn new(ts: u64, kind: EventKind, name: &str, fields: &[(&str, FieldValue)]) -> Self {
        Event {
            ts,
            kind,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// The event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        let _ = write!(out, "{{\"ts\":{},\"kind\":", self.ts);
        write_json_string(&mut out, self.kind.as_str());
        out.push_str(",\"name\":");
        write_json_string(&mut out, &self.name);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_matches_schema() {
        let e = Event::new(
            42,
            EventKind::Counter,
            "fl.bytes_up",
            &[("delta", 10u64.into()), ("total", 30u64.into())],
        );
        assert_eq!(
            e.to_json(),
            r#"{"ts":42,"kind":"counter","name":"fl.bytes_up","fields":{"delta":10,"total":30}}"#
        );
    }

    #[test]
    fn floats_and_strings_serialize_as_json_scalars() {
        let e = Event::new(
            7,
            EventKind::Gauge,
            "fl.test_accuracy",
            &[("value", 0.5f64.into()), ("note", "a\"b\\c\nd".into())],
        );
        assert_eq!(
            e.to_json(),
            r#"{"ts":7,"kind":"gauge","name":"fl.test_accuracy","fields":{"note":"a\"b\\c\nd","value":0.5}}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new(0, EventKind::Event, "e", &[("value", f64::NAN.into())]);
        assert_eq!(
            e.to_json(),
            r#"{"ts":0,"kind":"event","name":"e","fields":{"value":null}}"#
        );
    }

    #[test]
    fn field_order_is_sorted_and_stable() {
        let e = Event::new(
            1,
            EventKind::Event,
            "e",
            &[("z", 1u64.into()), ("a", 2u64.into()), ("m", 3u64.into())],
        );
        assert_eq!(
            e.to_json(),
            r#"{"ts":1,"kind":"event","name":"e","fields":{"a":2,"m":3,"z":1}}"#
        );
    }
}
