//! Fixed log-scale histograms.
//!
//! Values are binned by bit length (`bucket = 64 - value.leading_zeros()`),
//! i.e. bucket `i > 0` spans `[2^(i-1), 2^i)` and bucket 0 holds zeros.
//! 65 fixed buckets cover the whole `u64` range with no allocation and a
//! handful of instructions per observation.

/// A log2-bucketed histogram over `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for a value.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing quantile `q`
    /// (`0.0..=1.0`) — a log2-resolution approximation.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_track_observations() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_bounds_are_sane() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(1000);
        // p50 lands in the bucket of 10 ([8,16) => bound 16).
        assert_eq!(h.quantile_bound(0.5), 16);
        // p100 reaches the bucket of 1000 ([512,1024) => bound 1024).
        assert_eq!(h.quantile_bound(1.0), 1024);
        assert_eq!(Histogram::new().quantile_bound(0.5), 0);
    }
}
