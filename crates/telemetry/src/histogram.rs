//! Fixed log-scale histograms.
//!
//! Values are binned by bit length (`bucket = 64 - value.leading_zeros()`),
//! i.e. bucket `i > 0` spans `[2^(i-1), 2^i)` and bucket 0 holds zeros.
//! 65 fixed buckets cover the whole `u64` range with no allocation and a
//! handful of instructions per observation.

/// A log2-bucketed histogram over `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for a value.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one: bucket-wise counts plus
    /// exact count/sum/min/max. Percentiles of the merge are exact at the
    /// shared log2 bucket resolution.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated value at quantile `q` (`0.0..=1.0`), e.g. `percentile(0.5)`
    /// for p50 and `percentile(0.99)` for p99.
    ///
    /// Finds the log2 bucket containing the target rank and interpolates
    /// linearly within it, then clamps to the observed `[min, max]` range —
    /// much tighter than the bucket upper bound [`Histogram::quantile_bound`]
    /// reports, while still requiring only the 65 fixed buckets.
    ///
    /// Degenerate inputs are well-defined rather than propagating garbage:
    /// the empty histogram reports 0 for every `q`; out-of-range `q` is
    /// clamped into `[0, 1]`; a NaN `q` reads as 0 (the most conservative
    /// quantile), never as NaN output.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if q >= 1.0 {
            return self.max as f64;
        }
        let target = (q * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen;
            seen += n;
            if (seen as f64) >= target {
                if i == 0 {
                    return 0.0;
                }
                // Bucket i spans [2^(i-1), 2^i); interpolate at the
                // midpoint rank of the target within the bucket's
                // population so the estimate stays strictly inside it.
                let lo = (1u64 << (i - 1)) as f64;
                let hi = (1u64 << i) as f64;
                let frac = (target - before as f64 - 0.5) / n as f64;
                let v = lo + frac.clamp(0.0, 1.0) * (hi - lo);
                return v.clamp(self.min() as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Upper bound (exclusive) of the bucket containing quantile `q`
    /// (`0.0..=1.0`) — a log2-resolution approximation. Empty histograms
    /// report 0; out-of-range and NaN `q` are clamped like
    /// [`Histogram::percentile`].
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_track_observations() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate_and_clamp() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(1000);
        // p50 lands in the [8,16) bucket and must stay within it — far
        // tighter than the bucket-bound estimate of 16.
        let p50 = h.percentile(0.5);
        assert!((8.0..16.0).contains(&p50), "p50 {p50}");
        // p99 is rank 99, still inside the [8,16) bucket's population.
        assert!(h.percentile(0.99) < 16.0);
        // p100 reaches the outlier, clamped to the observed max.
        assert!((h.percentile(1.0) - 1000.0).abs() < 1e-9);
        // Clamping to min: every observation is 10, so all percentiles
        // stay at 10 despite the bucket spanning [8,16).
        let mut same = Histogram::new();
        for _ in 0..4 {
            same.observe(10);
        }
        assert!(same.percentile(0.01) >= 10.0);
        assert!(same.percentile(0.99) <= 10.0 + 1e-9);
        // Empties and zeros.
        assert_eq!(Histogram::new().percentile(0.5), 0.0);
        let mut z = Histogram::new();
        z.observe(0);
        assert_eq!(z.percentile(0.99), 0.0);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let mut h = Histogram::new();
        for v in [1u64, 3, 9, 27, 81, 243, 729] {
            h.observe(v);
        }
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(p >= last, "percentile({q}) = {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn degenerate_quantiles_are_clamped() {
        let mut h = Histogram::new();
        for v in [4u64, 8, 16, 1000] {
            h.observe(v);
        }
        // NaN reads as the most conservative quantile (q = 0)...
        assert_eq!(h.percentile(f64::NAN), h.percentile(0.0));
        assert!(!h.percentile(f64::NAN).is_nan());
        // ...and out-of-range q clamps into [0, 1].
        assert_eq!(h.percentile(-3.0), h.percentile(0.0));
        assert_eq!(h.percentile(7.5), h.max() as f64);
        assert_eq!(h.percentile(f64::INFINITY), h.max() as f64);
        assert_eq!(h.percentile(f64::NEG_INFINITY), h.percentile(0.0));
        assert_eq!(h.quantile_bound(f64::NAN), h.quantile_bound(0.0));
        assert_eq!(h.quantile_bound(-1.0), h.quantile_bound(0.0));
        assert_eq!(h.quantile_bound(2.0), h.quantile_bound(1.0));
        // The empty histogram is 0 for every q, degenerate or not.
        let empty = Histogram::new();
        for q in [f64::NAN, -1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.percentile(q), 0.0);
            assert_eq!(empty.quantile_bound(q), 0);
        }
    }

    #[test]
    fn quantile_bounds_are_sane() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(1000);
        // p50 lands in the bucket of 10 ([8,16) => bound 16).
        assert_eq!(h.quantile_bound(0.5), 16);
        // p100 reaches the bucket of 1000 ([512,1024) => bound 1024).
        assert_eq!(h.quantile_bound(1.0), 1024);
        assert_eq!(Histogram::new().quantile_bound(0.5), 0);
    }
}
