//! A minimal JSON reader for telemetry's own JSONL output.
//!
//! The crate stays free of external dependencies, so replaying a recorded
//! `--telemetry` stream (see [`crate::profile`]) needs a small parser of
//! its own. This is a strict recursive-descent parser over the full JSON
//! grammar — objects, arrays, strings with escapes, numbers, booleans,
//! null — kept deliberately tiny (no borrowed-slice zero-copy tricks, no
//! streaming) because telemetry lines are short and parsed once.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are uniformly `f64`, which is lossless
/// for every field telemetry itself emits (timestamps and durations stay
/// below 2^53 for ~285 years of microseconds).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is not preserved (sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses one complete JSON document (e.g. one JSONL line).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error,
/// including trailing garbage after the document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("unpaired surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(cp).ok_or("invalid unicode escape")?
                        };
                        out.push(c);
                    }
                    _ => return Err(format!("invalid escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos - 1))
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input
                    // came from a &str, so the bytes are valid UTF-8.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(format!("invalid \\u escape at byte {}", self.pos)),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_telemetry_lines() {
        let line = r#"{"ts":1520,"kind":"span","name":"round.transmit","fields":{"micros":412,"path":"round;round.transmit"}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("span"));
        assert_eq!(v.get("ts").and_then(Value::as_f64), Some(1520.0));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("micros").and_then(Value::as_f64), Some(412.0));
        assert_eq!(
            fields.get("path").and_then(Value::as_str),
            Some("round;round.transmit")
        );
    }

    #[test]
    fn parses_scalars_arrays_escapes() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(
            parse(r#"[1, "a\nb", {}]"#).unwrap(),
            Value::Arr(vec![
                Value::Num(1.0),
                Value::Str("a\nb".into()),
                Value::Obj(BTreeMap::new())
            ])
        );
        assert_eq!(parse(r#""é😀""#).unwrap(), Value::Str("é😀".into()));
    }

    #[test]
    fn round_trips_own_event_serializer() {
        use crate::event::{Event, EventKind};
        let e = Event::new(
            7,
            EventKind::Gauge,
            "fl.test_accuracy",
            &[("value", 0.5f64.into()), ("note", "a\"b\\c\nd".into())],
        );
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("fl.test_accuracy")
        );
        assert_eq!(
            v.get("fields").unwrap().get("note").and_then(Value::as_str),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"abc", "12x", "{} extra"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
