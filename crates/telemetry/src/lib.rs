//! # fhdnn-telemetry
//!
//! A zero-dependency (std-only) tracing/metrics layer for the
//! FHDnn reproduction. The paper's headline results are accounting claims
//! — bytes on the wire, airtime, accuracy under injected impairments — so
//! the stack needs a way to *observe itself*: where round wall-clock goes,
//! how many bits actually flipped, what the encoder hot path costs.
//!
//! The building blocks:
//!
//! - [`Recorder`] — counters, gauges, log2-bucket histograms and timed
//!   [`SpanGuard`] spans, aggregated in memory and streamed to a sink,
//! - sinks — [`sink::NoopSink`] (near-zero overhead when disabled),
//!   [`sink::MemorySink`] (tests), [`sink::JsonlSink`] (one JSON object
//!   per line: `{"ts":…,"kind":"span|counter|gauge|hist|event","name":…,
//!   "fields":{…}}`),
//! - [`clock::Clock`] — injectable time source; [`clock::ManualClock`]
//!   makes two identical runs byte-identical, timestamps included,
//! - [`Recorder::summary`] — an aligned, human-readable table of span
//!   totals, counters, gauges and histograms.
//!
//! # Example
//!
//! ```
//! use fhdnn_telemetry::{Recorder, sink::MemorySink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let tel = Recorder::with_sink(sink.clone());
//! {
//!     let _round = tel.span("round");
//!     tel.incr("fl.bytes_up", 4096);
//! }
//! assert_eq!(tel.counter_value("fl.bytes_up"), 4096);
//! assert_eq!(sink.len(), 2); // one counter event + one span event
//! println!("{}", tel.summary());
//! ```

#![deny(missing_docs)]
// `deny` rather than `forbid`: the `mem` module's GlobalAlloc wrapper is
// the one sanctioned unsafe island (SAFETY-audited by `fhdnn lint`);
// everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]

pub mod alert;
pub mod clock;
pub mod event;
pub mod histogram;
pub mod jsonl;
pub mod mem;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod sketch;
pub mod task;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use clock::{Clock, SystemClock};
use event::{Event, EventKind, FieldValue};
use histogram::Histogram;
use sink::{JsonlSink, NoopSink, Sink};
use task::{TaskBuffer, TaskEntry};

/// The shared handle everything holds: a cheaply-clonable recorder.
pub type Telemetry = Arc<Recorder>;

/// Aggregate of one span name: completions and total duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed span count.
    pub count: u64,
    /// Total duration across completions, microseconds.
    pub total_micros: u64,
}

/// Aggregate of one span *path* (the `;`-joined chain of enclosing span
/// names, innermost last): completions, total duration, and a log2
/// histogram of individual durations for percentile queries.
///
/// Paths are what the [`profile`] module's span-tree profiler consumes;
/// the flat per-name [`SpanStat`]s remain available for summary tables
/// and equal the per-name sum of path stats.
#[derive(Debug, Clone, Default)]
pub struct PathStat {
    /// Completed span count on this path.
    pub count: u64,
    /// Total duration across completions, microseconds.
    pub total_micros: u64,
    /// Distribution of individual span durations, microseconds.
    pub durations: Histogram,
    /// Allocations attributed to this path: performed by the owning
    /// thread while the span was open — inclusive of children, exactly
    /// like `total_micros` (the profiler derives self-allocations by
    /// subtracting child totals).
    pub allocs: u64,
    /// Bytes allocated on this path (gross, same inclusive attribution).
    pub alloc_bytes: u64,
}

/// Separator between span names in a recorded path — the same character
/// the collapsed-stack (flamegraph) format uses, so paths double as
/// ready-made stack frames.
pub const PATH_SEPARATOR: char = ';';

thread_local! {
    /// The stack of currently-open span names on this thread. Shared by
    /// all recorders (in practice one enabled recorder exists per run);
    /// disabled recorders never touch it.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The telemetry recorder: aggregates metrics in memory and streams every
/// observation to the configured sink.
///
/// All methods take `&self`; a recorder is shared as [`Telemetry`]
/// (`Arc<Recorder>`). A disabled recorder ([`Recorder::disabled`]) costs
/// one branch per call.
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    clock: Arc<dyn Clock>,
    sink: Arc<dyn Sink>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    paths: Mutex<BTreeMap<String, PathStat>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    traces: Mutex<trace::TraceRing>,
    /// Events that reached the sink — the recorder metering itself, so
    /// fleet mode can *prove* events-per-round is O(1) in client count.
    events_emitted: AtomicU64,
}

impl Recorder {
    fn build(enabled: bool, sink: Arc<dyn Sink>, clock: Arc<dyn Clock>) -> Telemetry {
        Arc::new(Recorder {
            enabled,
            clock,
            sink,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            paths: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            traces: Mutex::new(trace::TraceRing::default()),
            events_emitted: AtomicU64::new(0),
        })
    }

    /// The shared disabled recorder: every call is a no-op behind a single
    /// branch. This is the default wired through the federated stack, so
    /// uninstrumented runs pay (almost) nothing.
    pub fn disabled() -> Telemetry {
        static NOOP: OnceLock<Telemetry> = OnceLock::new();
        NOOP.get_or_init(|| {
            Recorder::build(false, Arc::new(NoopSink), Arc::new(SystemClock::new()))
        })
        .clone()
    }

    /// An enabled recorder streaming to `sink` on the real clock.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Telemetry {
        Recorder::build(true, sink, Arc::new(SystemClock::new()))
    }

    /// An enabled recorder with an explicit clock — inject a
    /// [`clock::ManualClock`] for deterministic timestamps.
    pub fn with_sink_and_clock(sink: Arc<dyn Sink>, clock: Arc<dyn Clock>) -> Telemetry {
        Recorder::build(true, sink, clock)
    }

    /// An enabled recorder that only aggregates in memory (no event
    /// stream) — enough for [`Recorder::summary`].
    pub fn in_memory() -> Telemetry {
        Recorder::with_sink(Arc::new(NoopSink))
    }

    /// An enabled recorder appending JSON lines to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn to_jsonl(path: impl AsRef<std::path::Path>) -> std::io::Result<Telemetry> {
        Ok(Recorder::with_sink(Arc::new(JsonlSink::create(path)?)))
    }

    /// `true` when observations are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current reading of the recorder's clock in microseconds.
    ///
    /// Useful for measuring durations that must stay deterministic under
    /// an injected [`clock::ManualClock`] (e.g. round timing in seeded
    /// reproducibility runs).
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Adds `delta` to the named counter.
    pub fn incr(&self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let total = {
            let mut counters = self.counters.lock().expect("counters poisoned");
            let entry = counters.entry(name.to_string()).or_insert(0);
            *entry += delta;
            *entry
        };
        self.emit(
            EventKind::Counter,
            name,
            &[("delta", delta.into()), ("total", total.into())],
        );
    }

    /// Sets the named gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.gauges
            .lock()
            .expect("gauges poisoned")
            .insert(name.to_string(), value);
        self.emit(EventKind::Gauge, name, &[("value", value.into())]);
    }

    /// Records one observation into the named log2-bucket histogram.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        self.histograms
            .lock()
            .expect("histograms poisoned")
            .entry(name.to_string())
            .or_default()
            .observe(value);
        self.emit(EventKind::Hist, name, &[("value", value.into())]);
    }

    /// Emits a free-form point event.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled {
            return;
        }
        self.emit(EventKind::Event, name, fields);
    }

    /// Opens a timed span; the returned guard records the elapsed time
    /// when dropped.
    ///
    /// Spans opened while another span is open on the same thread become
    /// its children: the closing event carries the full `;`-joined path
    /// (e.g. `round;round.transmit;hdc.quantize`), which feeds the
    /// [`profile`] module's call-tree aggregation. Guards are expected to
    /// drop in LIFO order (the natural RAII pattern); a guard dropped
    /// early also closes any children still open on its own bookkeeping.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                recorder: None,
                name,
                path: String::new(),
                depth: 0,
                start: 0,
                mark: mem::ThreadMark::default(),
            };
        }
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let mut path = String::with_capacity(
                stack.iter().map(|s| s.len() + 1).sum::<usize>() + name.len(),
            );
            for seg in stack.iter() {
                path.push_str(seg);
                path.push(PATH_SEPARATOR);
            }
            path.push_str(name);
            stack.push(name);
            (path, stack.len())
        });
        SpanGuard {
            recorder: Some(self),
            name,
            path,
            depth,
            // The mark is taken after the path string is built, so the
            // guard's own bookkeeping allocation never charges the span
            // — keeping same-seed runs byte-identical.
            mark: mem::thread_mark(),
            start: self.clock.now_micros(),
        }
    }

    fn close_span(&self, name: &str, path: &str, start: u64, mark: mem::ThreadMark) {
        // Delta first: the map insertions and event emission below
        // allocate, and those allocations belong to the *enclosing*
        // span, not this one.
        let alloc = mark.delta();
        let end = self.clock.now_micros();
        self.record_span(
            name,
            path,
            end.saturating_sub(start),
            alloc.allocs,
            alloc.alloc_bytes,
        );
    }

    /// Records one completed span with externally measured duration and
    /// allocation activity: updates the flat and per-path aggregates and
    /// emits the same span event [`Recorder::span`] guards produce. This
    /// is how buffered worker spans enter the recorder at the round
    /// barrier.
    fn record_span(&self, name: &str, path: &str, micros: u64, allocs: u64, alloc_bytes: u64) {
        {
            let mut spans = self.spans.lock().expect("spans poisoned");
            let stat = spans.entry(name.to_string()).or_default();
            stat.count += 1;
            stat.total_micros += micros;
        }
        {
            let mut paths = self.paths.lock().expect("paths poisoned");
            let stat = paths.entry(path.to_string()).or_default();
            stat.count += 1;
            stat.total_micros += micros;
            stat.durations.observe(micros);
            stat.allocs += allocs;
            stat.alloc_bytes += alloc_bytes;
        }
        self.emit(
            EventKind::Span,
            name,
            &[
                ("micros", micros.into()),
                ("path", path.into()),
                ("allocs", allocs.into()),
                ("alloc_bytes", alloc_bytes.into()),
            ],
        );
    }

    /// Creates a private span/counter buffer for one unit of parallel
    /// work (see [`task::TaskBuffer`]). The buffer inherits this
    /// recorder's enabled flag and clock; replay it with
    /// [`Recorder::absorb_task`] at the synchronization barrier.
    pub fn task_buffer(&self) -> TaskBuffer {
        TaskBuffer::new(self.enabled, self.clock.clone())
    }

    /// The `;`-joined path of spans currently open on *this* thread
    /// (empty when none are open). Buffered task spans absorbed here
    /// are nested under this path.
    #[must_use]
    pub fn current_path(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        SPAN_STACK.with(|stack| {
            let stack = stack.borrow();
            let mut path = String::new();
            for (i, seg) in stack.iter().enumerate() {
                if i > 0 {
                    path.push(PATH_SEPARATOR);
                }
                path.push_str(seg);
            }
            path
        })
    }

    /// Replays a task buffer into this recorder: spans are recorded
    /// under the calling thread's currently-open span path with their
    /// buffered durations, counters are applied via [`Recorder::incr`].
    /// Entries replay in the order the task recorded them, so absorbing
    /// buffers in a fixed order yields a deterministic stream
    /// regardless of how many threads produced them.
    pub fn absorb_task(&self, buf: TaskBuffer) {
        if !self.enabled || !buf.enabled() {
            return;
        }
        let prefix = self.current_path();
        for entry in buf.drain() {
            match entry {
                TaskEntry::Span {
                    name,
                    rel_path,
                    micros,
                    allocs,
                    alloc_bytes,
                } => {
                    let path = if prefix.is_empty() {
                        rel_path
                    } else {
                        let mut p = String::with_capacity(prefix.len() + 1 + rel_path.len());
                        p.push_str(&prefix);
                        p.push(PATH_SEPARATOR);
                        p.push_str(&rel_path);
                        p
                    };
                    self.record_span(name, &path, micros, allocs, alloc_bytes);
                }
                TaskEntry::Counter { name, delta } => self.incr(name, delta),
            }
        }
    }

    /// Records one task execution trace: the trace is retained in the
    /// bounded in-memory ring (read back with
    /// [`Recorder::trace_snapshot`]) and emitted as a `trace.task`
    /// event, so JSONL streams replay into the identical timeline.
    /// Ring evictions are counted on the `trace.dropped` counter. On a
    /// disabled recorder this is a no-op behind one branch.
    pub fn record_task_trace(&self, t: trace::TaskTrace) {
        if !self.enabled {
            return;
        }
        let engine = t.engine.clone();
        let fields: [(&str, FieldValue); 10] = [
            ("arrived", u64::from(t.arrived).into()),
            ("client", t.client.into()),
            ("end_micros", t.timing.end_micros.into()),
            ("engine", engine.as_str().into()),
            ("enqueue_micros", t.timing.enqueue_micros.into()),
            ("round", t.round.into()),
            ("sim_compute_micros", t.sim_compute_micros.into()),
            ("sim_uplink_micros", t.sim_uplink_micros.into()),
            ("start_micros", t.timing.start_micros.into()),
            ("worker", t.timing.worker.into()),
        ];
        self.emit(EventKind::Event, registry::EVENT_TRACE_TASK, &fields);
        let evicted = self.traces.lock().expect("traces poisoned").push(t);
        if evicted {
            self.incr("trace.dropped", 1);
        }
    }

    /// The task traces currently retained in the ring, oldest first.
    #[must_use]
    pub fn trace_snapshot(&self) -> Vec<trace::TaskTrace> {
        self.traces.lock().expect("traces poisoned").snapshot()
    }

    fn emit(&self, kind: EventKind, name: &str, fields: &[(&str, FieldValue)]) {
        let event = Event::new(self.clock.now_micros(), kind, name, fields);
        self.sink.record(&event);
        // ORDERING: Relaxed — self-metering tally; readers want an
        // eventual total, not an edge ordered against sink writes.
        self.events_emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Total events this recorder has pushed to its sink — the raw
    /// material of the `telemetry.overhead.events` self-metering
    /// counter. Snapshot it around a round to measure the round's
    /// emission cost.
    #[must_use]
    // ORDERING: Relaxed — reads an eventual total of a monotonic tally.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted.load(Ordering::Relaxed)
    }

    /// Total bytes the sink has serialized (0 for sinks that do not
    /// write bytes) — the raw material of the
    /// `telemetry.overhead.jsonl_bytes` self-metering counter.
    #[must_use]
    pub fn sink_bytes_written(&self) -> u64 {
        self.sink.bytes_written()
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        *self
            .counters
            .lock()
            .expect("counters poisoned")
            .get(name)
            .unwrap_or(&0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .expect("gauges poisoned")
            .get(name)
            .copied()
    }

    /// Aggregate of a span name (zero if never closed).
    pub fn span_stat(&self, name: &str) -> SpanStat {
        self.spans
            .lock()
            .expect("spans poisoned")
            .get(name)
            .copied()
            .unwrap_or_default()
    }

    /// All flat per-name span aggregates.
    pub fn span_stats(&self) -> BTreeMap<String, SpanStat> {
        self.spans.lock().expect("spans poisoned").clone()
    }

    /// All per-path span aggregates (`;`-joined paths, innermost last) —
    /// the raw material of the [`profile`] span-tree profiler.
    pub fn path_stats(&self) -> BTreeMap<String, PathStat> {
        self.paths.lock().expect("paths poisoned").clone()
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    /// Renders an aligned human-readable table of span totals, counters,
    /// gauges and histograms. Empty sections are omitted; a recorder with
    /// no data renders an explanatory one-liner.
    pub fn summary(&self) -> String {
        let spans = self.spans.lock().expect("spans poisoned").clone();
        let counters = self.counters.lock().expect("counters poisoned").clone();
        let gauges = self.gauges.lock().expect("gauges poisoned").clone();
        let histograms = self.histograms.lock().expect("histograms poisoned").clone();

        let name_width = spans
            .keys()
            .chain(counters.keys())
            .chain(gauges.keys())
            .chain(histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(4)
            .max("name".len());

        let mut out = String::new();
        if !spans.is_empty() {
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>12}  {:>12}\n",
                "span", "count", "total", "mean"
            ));
            for (name, stat) in &spans {
                let mean = if stat.count == 0 {
                    0.0
                } else {
                    stat.total_micros as f64 / stat.count as f64
                };
                out.push_str(&format!(
                    "{:<name_width$}  {:>8}  {:>12}  {:>12}\n",
                    name,
                    stat.count,
                    fmt_micros(stat.total_micros as f64),
                    fmt_micros(mean)
                ));
            }
        }
        if !counters.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<name_width$}  {:>16}\n", "counter", "value"));
            for (name, value) in &counters {
                out.push_str(&format!("{name:<name_width$}  {value:>16}\n"));
            }
        }
        if !gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<name_width$}  {:>16}\n", "gauge", "value"));
            for (name, value) in &gauges {
                out.push_str(&format!("{name:<name_width$}  {value:>16.4}\n"));
            }
        }
        if !histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>12}\n",
                "histogram", "count", "mean", "p50", "p99"
            ));
            for (name, h) in &histograms {
                out.push_str(&format!(
                    "{:<name_width$}  {:>8}  {:>12.1}  {:>12.1}  {:>12.1}\n",
                    name,
                    h.count(),
                    h.mean(),
                    h.percentile(0.5),
                    h.percentile(0.99)
                ));
            }
        }
        if out.is_empty() {
            out.push_str("telemetry: no data recorded\n");
        }
        out
    }
}

/// Formats microseconds with a readable unit.
pub(crate) fn fmt_micros(micros: f64) -> String {
    if micros >= 1_000_000.0 {
        format!("{:.3}s", micros / 1_000_000.0)
    } else if micros >= 1_000.0 {
        format!("{:.3}ms", micros / 1_000.0)
    } else {
        format!("{micros:.0}us")
    }
}

/// RAII guard for a timed span: records the elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    recorder: Option<&'a Recorder>,
    name: &'static str,
    /// Full `;`-joined path including `name`, computed at open.
    path: String,
    /// Stack depth just after pushing `name` (1-based).
    depth: usize,
    start: u64,
    /// This thread's allocation counters at open; the close delta is the
    /// span's attributed allocation activity.
    mark: mem::ThreadMark,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.recorder {
            // Truncate rather than pop: if children were leaked or
            // dropped out of order, closing the parent still restores a
            // consistent stack.
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if stack.len() >= self.depth {
                    stack.truncate(self.depth - 1);
                }
            });
            rec.close_span(self.name, &self.path, self.start, self.mark);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clock::ManualClock;
    use sink::MemorySink;

    #[test]
    fn disabled_recorder_records_nothing() {
        let tel = Recorder::disabled();
        tel.incr("c", 5);
        tel.gauge("g", 1.0);
        tel.observe("h", 3);
        {
            let _s = tel.span("s");
        }
        assert!(!tel.enabled());
        assert_eq!(tel.counter_value("c"), 0);
        assert_eq!(tel.gauge_value("g"), None);
        assert_eq!(tel.span_stat("s"), SpanStat::default());
    }

    /// Cross-thread audit for the parallel round engine: counters,
    /// histograms, span stats and absorbed task buffers from many
    /// threads must merge without losing a single observation — the
    /// per-map mutexes make every read-modify-write atomic.
    #[test]
    fn concurrent_recording_merges_without_loss() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;

        let sink = Arc::new(MemorySink::new());
        let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(1)));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let tel = tel.clone();
                scope.spawn(move || {
                    let mut buf = tel.task_buffer();
                    for i in 0..PER_THREAD {
                        tel.incr("direct", 1);
                        tel.observe("hist", i);
                        {
                            let _g = tel.span("work");
                        }
                        buf.incr("buffered", 1);
                        let s = buf.begin("task.step");
                        buf.end(s);
                    }
                    tel.absorb_task(buf);
                });
            }
        });
        let total = THREADS * PER_THREAD;
        assert_eq!(tel.counter_value("direct"), total);
        assert_eq!(tel.counter_value("buffered"), total);
        assert_eq!(tel.span_stat("work").count, total);
        assert_eq!(tel.span_stat("task.step").count, total);
        // Every observation also reached the sink as a whole event.
        let events = sink.events();
        assert!(events.len() as u64 >= 3 * total);
    }

    #[test]
    fn counters_accumulate_and_emit() {
        let sink = Arc::new(MemorySink::new());
        let tel = Recorder::with_sink(sink.clone());
        tel.incr("fl.bytes_up", 10);
        tel.incr("fl.bytes_up", 20);
        assert_eq!(tel.counter_value("fl.bytes_up"), 30);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].fields["total"], FieldValue::U64(30));
    }

    #[test]
    fn spans_measure_manual_clock_time() {
        let sink = Arc::new(MemorySink::new());
        let clock = Arc::new(ManualClock::new(5));
        let tel = Recorder::with_sink_and_clock(sink.clone(), clock);
        {
            let _outer = tel.span("outer");
            let _inner = tel.span("inner");
        }
        // Each clock reading advances 5us; inner closes first.
        let inner = tel.span_stat("inner");
        let outer = tel.span_stat("outer");
        assert_eq!(inner.count, 1);
        assert_eq!(outer.count, 1);
        assert!(outer.total_micros > inner.total_micros);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn nested_spans_record_paths() {
        let sink = Arc::new(MemorySink::new());
        let clock = Arc::new(ManualClock::new(5));
        let tel = Recorder::with_sink_and_clock(sink.clone(), clock);
        {
            let _outer = tel.span("round");
            {
                let _inner = tel.span("round.transmit");
                let _leaf = tel.span("hdc.quantize");
            }
            let _again = tel.span("round.transmit");
        }
        let paths = tel.path_stats();
        assert_eq!(paths["round"].count, 1);
        assert_eq!(paths["round;round.transmit"].count, 2);
        assert_eq!(paths["round;round.transmit;hdc.quantize"].count, 1);
        // Flat per-name stats equal the per-name sum over paths.
        assert_eq!(tel.span_stat("round.transmit").count, 2);
        assert_eq!(
            tel.span_stat("round.transmit").total_micros,
            paths["round;round.transmit"].total_micros
        );
        // The emitted span events carry the path field.
        let span_paths: Vec<String> = sink
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .map(|e| match &e.fields["path"] {
                FieldValue::Str(s) => s.clone(),
                other => panic!("path should be a string, got {other:?}"),
            })
            .collect();
        assert!(span_paths.contains(&"round;round.transmit;hdc.quantize".to_string()));
    }

    #[test]
    fn spans_attribute_allocation_deltas() {
        let sink = Arc::new(MemorySink::new());
        let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(1)));
        {
            let _s = tel.span("work");
            let v: Vec<u8> = Vec::with_capacity(100_000);
            drop(v);
        }
        let paths = tel.path_stats();
        assert!(paths["work"].allocs >= 1, "the vec counts");
        assert!(paths["work"].alloc_bytes >= 100_000);
        // The emitted span event carries the attribution fields.
        let span = sink
            .events()
            .into_iter()
            .find(|e| e.kind == EventKind::Span)
            .expect("one span event");
        match span.fields["alloc_bytes"] {
            FieldValue::U64(b) => assert!(b >= 100_000, "alloc_bytes {b}"),
            ref other => panic!("alloc_bytes should be u64, got {other:?}"),
        }
        assert!(span.fields.contains_key("allocs"));
    }

    #[test]
    fn task_buffers_attribute_worker_allocations() {
        let tel = Recorder::in_memory();
        let buf = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let mut buf = tel.task_buffer();
                    let s = buf.begin("round.local_train");
                    let v: Vec<u8> = Vec::with_capacity(65_536);
                    drop(v);
                    buf.end(s);
                    buf
                })
                .join()
                .expect("worker joins")
        });
        tel.absorb_task(buf);
        let paths = tel.path_stats();
        assert!(
            paths["round.local_train"].alloc_bytes >= 65_536,
            "worker-side allocation replayed through the barrier: {:?}",
            paths["round.local_train"]
        );
    }

    #[test]
    fn early_parent_drop_recovers_stack() {
        let tel = Recorder::in_memory();
        let outer = tel.span("outer");
        let inner = tel.span("inner");
        // Parent dropped before child: the stack self-heals, and a span
        // opened afterwards is a root again.
        drop(outer);
        drop(inner);
        {
            let _fresh = tel.span("fresh");
        }
        let paths = tel.path_stats();
        assert!(paths.contains_key("fresh"), "paths: {:?}", paths.keys());
        assert!(paths.contains_key("outer;inner"));
    }

    #[test]
    fn disabled_recorder_skips_path_tracking() {
        let tel = Recorder::disabled();
        {
            let _a = tel.span("a");
            let _b = tel.span("b");
        }
        assert!(tel.path_stats().is_empty());
        // And it must not pollute the shared thread-local stack for a
        // subsequently enabled recorder.
        let live = Recorder::in_memory();
        {
            let _root = live.span("root");
        }
        assert!(live.path_stats().contains_key("root"));
    }

    #[test]
    fn manual_clock_runs_are_byte_identical() {
        let run = || {
            let sink = Arc::new(MemorySink::new());
            let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(1)));
            {
                let _s = tel.span("round");
                tel.incr("bytes", 42);
            }
            tel.gauge("acc", 0.9);
            sink.events()
                .iter()
                .map(Event::to_json)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn summary_is_aligned_and_complete() {
        let tel = Recorder::in_memory();
        tel.incr("fl.participants", 4);
        tel.gauge("fl.test_accuracy", 0.87);
        tel.observe("round_micros", 1500);
        {
            let _s = tel.span("round.local_train");
        }
        let s = tel.summary();
        assert!(s.contains("round.local_train"), "{s}");
        assert!(s.contains("fl.participants"), "{s}");
        assert!(s.contains("fl.test_accuracy"), "{s}");
        assert!(s.contains("round_micros"), "{s}");
        // Every non-empty line starts aligned within its section.
        assert!(s.lines().count() >= 8, "{s}");
    }

    #[test]
    fn empty_summary_explains_itself() {
        assert!(Recorder::in_memory().summary().contains("no data"));
    }

    #[test]
    fn task_buffer_replays_under_current_path() {
        let sink = Arc::new(MemorySink::new());
        let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(5)));
        let round = tel.span("round");
        let mut buf = tel.task_buffer();
        let outer = buf.begin("round.transmit");
        let inner = buf.begin("chan.uplink");
        buf.end(inner);
        buf.end(outer);
        buf.incr("chan.bits", 7);
        buf.incr("chan.zero", 0); // zero-suppressed
        tel.absorb_task(buf);
        drop(round);
        let paths = tel.path_stats();
        assert_eq!(paths["round;round.transmit"].count, 1);
        assert_eq!(paths["round;round.transmit;chan.uplink"].count, 1);
        assert_eq!(tel.counter_value("chan.bits"), 7);
        assert_eq!(tel.counter_value("chan.zero"), 0);
        // Child recorded before parent, as RAII guards would have.
        let events = sink.events();
        let span_names: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(span_names, vec!["chan.uplink", "round.transmit", "round"]);
        // Flat per-name totals stay consistent with the path stats.
        assert_eq!(
            tel.span_stat("chan.uplink").total_micros,
            paths["round;round.transmit;chan.uplink"].total_micros
        );
    }

    #[test]
    fn disabled_task_buffer_is_inert() {
        let tel = Recorder::disabled();
        let mut buf = tel.task_buffer();
        let s = buf.begin("work");
        buf.end(s);
        buf.incr("c", 3);
        tel.absorb_task(buf);
        assert!(tel.path_stats().is_empty());
        assert_eq!(tel.counter_value("c"), 0);
    }

    #[test]
    fn fmt_micros_units() {
        assert_eq!(fmt_micros(500.0), "500us");
        assert_eq!(fmt_micros(1500.0), "1.500ms");
        assert_eq!(fmt_micros(2_500_000.0), "2.500s");
    }
}
