//! Tracked global allocator: memory observability for the whole stack.
//!
//! FHDnn's pitch is federated learning on resource-constrained AIoT
//! devices, and the resource that caps AIoT scale is memory. This module
//! installs a [`std::alloc::GlobalAlloc`] wrapper around the system
//! allocator for every binary that links `fhdnn-telemetry` (which is the
//! entire workspace) and keeps, with relaxed atomics:
//!
//! - **live bytes** — currently allocated and not yet freed,
//! - **peak bytes** — the high watermark of live bytes (resettable via
//!   [`watermark`], so round engines measure per-round peaks),
//! - **alloc / dealloc counts** and **total allocated bytes**,
//! - a **log2 size-class histogram** (bucket `i` counts allocations of
//!   `2^i ..= 2^(i+1) − 1` bytes),
//!
//! plus per-thread cumulative counters ([`thread_mark`]) that the span
//! machinery in the crate root uses to attribute allocation deltas to
//! the active telemetry span — `fhdnn profile --mem` renders that
//! attribution as an allocation tree next to the time tree.
//!
//! ## Determinism contract
//!
//! The hooks only touch atomics and thread-local `Cell`s: they never
//! allocate, lock, read clocks, or unwind, so tracking cannot perturb
//! RNG streams, scheduling, or any metric the determinism suite
//! compares. Counter *values* are process-global and monotonic — under
//! concurrency (parallel rounds, parallel test binaries) they reflect
//! every thread's traffic, which is why round watermarks ride dedicated
//! serde-default fields that the byte-identity comparisons canonicalize
//! out, while per-span attribution uses the calling thread's private
//! counters and stays exact.

// The one sanctioned unsafe island in the workspace: a GlobalAlloc
// wrapper cannot be written without `unsafe`. Every occurrence below is
// `// SAFETY:`-audited per the `unsafe/needs-safety-comment` lint rule.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 size-class buckets (one per possible bit position of
/// a 64-bit allocation size).
pub const SIZE_CLASSES: usize = 64;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static SIZE_CLASS: [AtomicU64; SIZE_CLASSES] = [const { AtomicU64::new(0) }; SIZE_CLASSES];

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Log2 bucket index of an allocation size: `⌊log2(size)⌋`, with the
/// (never produced by `Layout`) size 0 folded into bucket 0.
#[inline]
fn size_class(size: u64) -> usize {
    63 - size.max(1).leading_zeros() as usize
}

/// Books one successful allocation of `size` bytes.
#[inline]
fn record_alloc(size: u64) {
    // ORDERING: Relaxed on every counter — the hooks run on the
    // allocation hot path and only feed monotonic tallies; readers
    // reconcile via the ledger identity (live = alloc_bytes −
    // freed_bytes), never via a happens-before edge with this thread.
    ALLOCS.fetch_add(1, Relaxed);
    ALLOC_BYTES.fetch_add(size, Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Relaxed).wrapping_add(size);
    PEAK_BYTES.fetch_max(live, Relaxed);
    SIZE_CLASS[size_class(size)].fetch_add(1, Relaxed);
    // `try_with`: during thread teardown the TLS slots may already be
    // destroyed while the runtime still frees/allocates; dropping those
    // few attributions is fine, panicking inside the allocator is not.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = THREAD_ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
}

/// Books one deallocation of `size` bytes.
// ORDERING: Relaxed — same monotonic-tally regime as `record_alloc`.
#[inline]
fn record_dealloc(size: u64) {
    DEALLOCS.fetch_add(1, Relaxed);
    FREED_BYTES.fetch_add(size, Relaxed);
    LIVE_BYTES.fetch_sub(size, Relaxed);
}

/// The tracked allocator: forwards every call to [`System`] and books
/// the byte/count deltas. Installed process-wide by this crate's
/// `#[global_allocator]` static, so *linking* `fhdnn-telemetry` is
/// enough — no opt-in, no feature flag, and (by the determinism
/// contract above) no behavioural difference beyond the counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrackedAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the added tracking touches only atomics and
// thread-local `Cell`s and never allocates, recurses, or unwinds.
unsafe impl GlobalAlloc for TrackedAlloc {
    // SAFETY: contract inherited from `GlobalAlloc::alloc`; discharged
    // by forwarding to `System` (see the `unsafe impl` audit above).
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller upholds `alloc`'s contract; forwarded as-is.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    // SAFETY: contract inherited from `GlobalAlloc::alloc_zeroed`;
    // discharged by forwarding to `System`.
    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller upholds `alloc_zeroed`'s contract.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    // SAFETY: contract inherited from `GlobalAlloc::dealloc`;
    // discharged by forwarding to `System`.
    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: the caller guarantees `ptr` came from this allocator
        // with this `layout`; forwarded as-is.
        unsafe { System.dealloc(ptr, layout) };
        record_dealloc(layout.size() as u64);
    }

    // SAFETY: contract inherited from `GlobalAlloc::realloc`;
    // discharged by forwarding to `System`.
    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: the caller guarantees `ptr`/`layout` validity and a
        // nonzero `new_size`; forwarded as-is.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Booked as free-then-allocate so live bytes stay exact.
            record_dealloc(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        new_ptr
    }
}

/// The process-wide allocator instance (see [`TrackedAlloc`]). Not
/// installed under Miri: its interpreter supplies its own allocator
/// shim, and the counters would only slow the interpreted run down, so
/// the sanitizer wall runs with tracking off and the counter-dependent
/// tests `#[cfg_attr(miri, ignore)]`d.
#[cfg(not(miri))]
#[global_allocator]
static GLOBAL: TrackedAlloc = TrackedAlloc;

/// A point-in-time snapshot of the process-wide allocator counters.
///
/// Values are monotonically advancing (except `live_bytes`, which also
/// falls, and `peak_bytes`, which [`watermark`] resets); under
/// concurrency they aggregate every thread's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High watermark of `live_bytes` since process start or the last
    /// [`watermark`] reset.
    pub peak_bytes: u64,
    /// Successful allocations (including the alloc half of reallocs).
    pub allocs: u64,
    /// Deallocations (including the free half of reallocs).
    pub deallocs: u64,
    /// Total bytes ever allocated (gross, not net).
    pub alloc_bytes: u64,
    /// Total bytes ever freed (gross). At any quiescent point the
    /// ledger balances: `live_bytes == alloc_bytes - freed_bytes`.
    pub freed_bytes: u64,
}

/// Snapshot of the global counters.
#[must_use]
pub fn stats() -> MemStats {
    // ORDERING: Relaxed — deliberately not a consistent cut; consumers
    // use quiescent-point deltas, and the ledger identity is only
    // asserted when no allocator traffic is in flight.
    MemStats {
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_bytes: PEAK_BYTES.load(Relaxed),
        allocs: ALLOCS.load(Relaxed),
        deallocs: DEALLOCS.load(Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Relaxed),
        freed_bytes: FREED_BYTES.load(Relaxed),
    }
}

/// Snapshot of the log2 size-class histogram: bucket `i` counts
/// allocations of `2^i ..= 2^(i+1) − 1` bytes since process start.
#[must_use]
pub fn size_class_histogram() -> [u64; SIZE_CLASSES] {
    // ORDERING: Relaxed — 64 independent monotonic tallies, torn reads
    // across buckets are acceptable in an observability histogram.
    let mut out = [0u64; SIZE_CLASSES];
    for (dst, src) in out.iter_mut().zip(SIZE_CLASS.iter()) {
        *dst = src.load(Relaxed);
    }
    out
}

/// Cumulative allocation counters of the **calling thread** — the
/// attribution primitive behind span-scoped allocation deltas. Marks
/// taken on one thread are only meaningful against later marks on the
/// same thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadMark {
    /// Allocations performed by this thread so far.
    pub allocs: u64,
    /// Bytes allocated by this thread so far (gross).
    pub alloc_bytes: u64,
}

/// Takes a mark of the calling thread's cumulative counters.
#[must_use]
pub fn thread_mark() -> ThreadMark {
    ThreadMark {
        allocs: THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0),
        alloc_bytes: THREAD_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

impl ThreadMark {
    /// Allocation activity on this thread since `self` was taken:
    /// `(allocs, bytes)`, saturating against marks from other threads.
    #[must_use]
    pub fn delta(&self) -> ThreadMark {
        let now = thread_mark();
        ThreadMark {
            allocs: now.allocs.saturating_sub(self.allocs),
            alloc_bytes: now.alloc_bytes.saturating_sub(self.alloc_bytes),
        }
    }
}

/// A per-scope high-watermark measurement: [`watermark`] resets the
/// process peak to the current live level and snapshots the counters;
/// [`Watermark::finish`] reports how far the scope pushed them.
///
/// Used by both round engines to fill the `mem_*` fields of
/// `RoundMetrics` / `HealthRecord`. Process-global: concurrent scopes
/// (parallel tests, overlapping rounds) see each other's traffic, which
/// is why the consumers treat the values as observability data, never
/// as inputs to the math.
#[derive(Debug, Clone, Copy)]
pub struct Watermark {
    start_live: u64,
    start_allocs: u64,
    start_alloc_bytes: u64,
}

/// The allocation activity a [`Watermark`] scope observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatermarkDelta {
    /// Peak live bytes above the scope's starting live level.
    pub peak_bytes: u64,
    /// Allocations during the scope.
    pub allocs: u64,
    /// Bytes allocated during the scope (gross).
    pub alloc_bytes: u64,
}

/// Opens a watermark scope: resets the global peak to the current live
/// level and snapshots the counters.
#[must_use]
pub fn watermark() -> Watermark {
    let s = stats();
    // ORDERING: Relaxed — the reset races benignly with concurrent
    // fetch_max calls; scopes are documented as process-global
    // observability, not synchronization.
    PEAK_BYTES.store(s.live_bytes, Relaxed);
    Watermark {
        start_live: s.live_bytes,
        start_allocs: s.allocs,
        start_alloc_bytes: s.alloc_bytes,
    }
}

impl Watermark {
    /// Closes the scope: peak-above-start and gross activity since the
    /// scope opened (saturating — concurrent frees can push live below
    /// the starting level).
    #[must_use]
    pub fn finish(&self) -> WatermarkDelta {
        let s = stats();
        WatermarkDelta {
            peak_bytes: s.peak_bytes.saturating_sub(self.start_live),
            allocs: s.allocs.saturating_sub(self.start_allocs),
            alloc_bytes: s.alloc_bytes.saturating_sub(self.start_alloc_bytes),
        }
    }
}

/// Renders `bytes` with a binary unit suffix (`B`, `KiB`, `MiB`, `GiB`),
/// one decimal above bytes — shared by the profiler, the summary table
/// and the watch dashboard.
#[must_use]
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KIB {
        format!("{bytes} B")
    } else if b < KIB * KIB {
        format!("{:.1} KiB", b / KIB)
    } else if b < KIB * KIB * KIB {
        format!("{:.1} MiB", b / (KIB * KIB))
    } else {
        format!("{:.1} GiB", b / (KIB * KIB * KIB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(miri, ignore = "tracked allocator is not installed under Miri")]
    fn counters_observe_a_boxed_allocation() {
        let before = stats();
        let mark = thread_mark();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let after = stats();
        let delta = mark.delta();
        drop(v);
        assert!(after.allocs > before.allocs, "alloc count advanced");
        assert!(after.alloc_bytes >= before.alloc_bytes + 4096);
        assert!(delta.allocs >= 1, "thread-local attribution saw the vec");
        assert!(delta.alloc_bytes >= 4096);
    }

    #[test]
    #[cfg_attr(miri, ignore = "tracked allocator is not installed under Miri")]
    fn live_bytes_fall_on_free() {
        let v: Vec<u8> = Vec::with_capacity(1 << 20);
        let with_live = stats().live_bytes;
        drop(v);
        let after_free = stats().live_bytes;
        assert!(
            after_free + (1 << 20) <= with_live + (1 << 19),
            "freeing 1 MiB lowered live bytes ({with_live} -> {after_free})"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "tracked allocator is not installed under Miri")]
    fn watermark_measures_peak_above_start() {
        let wm = watermark();
        let v: Vec<u8> = vec![0; 1 << 21];
        drop(v);
        let delta = wm.finish();
        assert!(
            delta.peak_bytes >= 1 << 21,
            "peak {} covers the 2 MiB spike",
            delta.peak_bytes
        );
        assert!(delta.allocs >= 1);
        assert!(delta.alloc_bytes >= 1 << 21);
    }

    #[test]
    fn thread_marks_are_thread_private() {
        let mark = thread_mark();
        std::thread::spawn(|| {
            let v: Vec<u8> = Vec::with_capacity(1 << 16);
            drop(v);
        })
        .join()
        .expect("worker thread joins");
        // The worker's 64 KiB never lands on this thread's counters.
        assert!(mark.delta().alloc_bytes < 1 << 16);
    }

    #[test]
    #[cfg_attr(miri, ignore = "tracked allocator is not installed under Miri")]
    fn size_classes_bucket_by_log2() {
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 1);
        assert_eq!(size_class(4), 2);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(u64::MAX), 63);
        let before = size_class_histogram();
        let v: Vec<u8> = Vec::with_capacity(1000); // bucket 9: 512..1023
        drop(v);
        let after = size_class_histogram();
        assert!(after[9] > before[9], "1000-byte alloc lands in bucket 9");
    }

    #[test]
    fn fmt_bytes_picks_binary_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.0 GiB");
    }
}
