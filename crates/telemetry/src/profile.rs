//! Span-tree profiling: turn recorded spans into a call tree.
//!
//! The FHDnn paper's claims are *cost* claims — per-round clock time on
//! edge devices, airtime on lossy links — so the reproduction needs to
//! see where its own wall-clock goes. Every [`crate::Recorder`] already
//! aggregates spans by full path (the `;`-joined chain of enclosing span
//! names); this module folds those paths into a [`Profile`] tree with,
//! per node:
//!
//! - call count, total (inclusive) time, self time (total minus
//!   children),
//! - p50/p99 of individual span durations (via
//!   [`crate::histogram::Histogram::percentile`]),
//!
//! and renders either an aligned text report ([`Profile::render`]) or a
//! collapsed-stack export ([`Profile::collapsed`]) that `flamegraph.pl` /
//! `inferno` consume directly.
//!
//! Profiles build from three sources:
//!
//! - a live recorder: [`Profile::from_recorder`],
//! - raw path stats: [`Profile::from_path_stats`],
//! - a recorded `--telemetry` JSONL stream: [`Profile::from_jsonl_str`] /
//!   [`Profile::from_jsonl_path`] — offline profiling of a past run.
//!
//! The per-name totals of a profile always agree with the recorder's flat
//! [`crate::SpanStat`]s (see [`Profile::flat_totals`]): both are fed by
//! the same span closures.

use std::collections::BTreeMap;

use crate::histogram::Histogram;
use crate::jsonl;
use crate::mem::fmt_bytes;
use crate::{fmt_micros, PathStat, Recorder, SpanStat, PATH_SEPARATOR};

/// One node of the span call tree.
#[derive(Debug, Clone, Default)]
pub struct ProfileNode {
    /// Leaf span name (the last path segment).
    pub name: String,
    /// Completed span count at this exact path.
    pub count: u64,
    /// Total (inclusive) time across completions, microseconds.
    pub total_micros: u64,
    /// Distribution of individual span durations, microseconds.
    pub durations: Histogram,
    /// Total (inclusive) allocations attributed to this path.
    pub allocs: u64,
    /// Total (inclusive) bytes allocated on this path (gross).
    pub alloc_bytes: u64,
    /// Children, keyed by leaf name.
    pub children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    /// Self time: total minus the children's totals (saturating — a
    /// child measured on a different clock granularity can nominally
    /// exceed its parent by a rounding quantum).
    pub fn self_micros(&self) -> u64 {
        let children: u64 = self.children.values().map(|c| c.total_micros).sum();
        self.total_micros.saturating_sub(children)
    }

    /// Self allocations: total minus the children's totals (saturating —
    /// a child span replayed from a worker buffer measures the worker's
    /// counters while the parent measures the barrier thread's, so the
    /// nesting is advisory, not arithmetic).
    pub fn self_allocs(&self) -> u64 {
        let children: u64 = self.children.values().map(|c| c.allocs).sum();
        self.allocs.saturating_sub(children)
    }

    /// Self allocated bytes: total minus the children's totals
    /// (saturating, same caveat as [`ProfileNode::self_allocs`]).
    pub fn self_alloc_bytes(&self) -> u64 {
        let children: u64 = self.children.values().map(|c| c.alloc_bytes).sum();
        self.alloc_bytes.saturating_sub(children)
    }

    /// p50 of individual span durations at this path, microseconds.
    pub fn p50_micros(&self) -> f64 {
        self.durations.percentile(0.5)
    }

    /// p99 of individual span durations at this path, microseconds.
    pub fn p99_micros(&self) -> f64 {
        self.durations.percentile(0.99)
    }
}

/// A span call tree aggregated over one run (or one recorded stream).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    roots: BTreeMap<String, ProfileNode>,
}

impl Profile {
    /// Builds the tree from `;`-joined path aggregates.
    pub fn from_path_stats(stats: &BTreeMap<String, PathStat>) -> Profile {
        fn insert(level: &mut BTreeMap<String, ProfileNode>, segs: &[&str], stat: &PathStat) {
            let Some((head, rest)) = segs.split_first() else {
                return;
            };
            let node = level
                .entry((*head).to_string())
                .or_insert_with(|| ProfileNode {
                    name: (*head).to_string(),
                    ..ProfileNode::default()
                });
            if rest.is_empty() {
                node.count += stat.count;
                node.total_micros += stat.total_micros;
                node.durations.merge(&stat.durations);
                node.allocs += stat.allocs;
                node.alloc_bytes += stat.alloc_bytes;
            } else {
                insert(&mut node.children, rest, stat);
            }
        }
        let mut profile = Profile::default();
        for (path, stat) in stats {
            let segs: Vec<&str> = path.split(PATH_SEPARATOR).collect();
            insert(&mut profile.roots, &segs, stat);
        }
        profile
    }

    /// Snapshot of a live recorder's span paths.
    pub fn from_recorder(recorder: &Recorder) -> Profile {
        Profile::from_path_stats(&recorder.path_stats())
    }

    /// Aggregates the span events of a recorded JSONL telemetry stream.
    ///
    /// Lines that are not valid JSON or not `kind == "span"` are skipped
    /// (the stream interleaves counters, gauges and free-form events);
    /// span events missing a `path` field (recordings made before path
    /// tracking) fall back to their flat name, yielding a one-level tree.
    ///
    /// # Errors
    ///
    /// Returns an error if *no* span event is found — almost always the
    /// wrong file rather than a legitimately empty profile.
    pub fn from_jsonl_str(stream: &str) -> Result<Profile, String> {
        let mut stats: BTreeMap<String, PathStat> = BTreeMap::new();
        let mut spans = 0usize;
        for line in stream.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = jsonl::parse(line) else {
                continue;
            };
            if v.get("kind").and_then(jsonl::Value::as_str) != Some("span") {
                continue;
            }
            let Some(name) = v.get("name").and_then(jsonl::Value::as_str) else {
                continue;
            };
            let Some(fields) = v.get("fields") else {
                continue;
            };
            let micros = fields
                .get("micros")
                .and_then(jsonl::Value::as_f64)
                .unwrap_or(0.0)
                .max(0.0) as u64;
            let path = fields
                .get("path")
                .and_then(jsonl::Value::as_str)
                .unwrap_or(name);
            // Allocation fields absent on pre-mem recordings default 0.
            let allocs = fields
                .get("allocs")
                .and_then(jsonl::Value::as_f64)
                .unwrap_or(0.0)
                .max(0.0) as u64;
            let alloc_bytes = fields
                .get("alloc_bytes")
                .and_then(jsonl::Value::as_f64)
                .unwrap_or(0.0)
                .max(0.0) as u64;
            let stat = stats.entry(path.to_string()).or_default();
            stat.count += 1;
            stat.total_micros += micros;
            stat.durations.observe(micros);
            stat.allocs += allocs;
            stat.alloc_bytes += alloc_bytes;
            spans += 1;
        }
        if spans == 0 {
            return Err(
                "no span events found in stream (is this a --telemetry JSONL file?)".into(),
            );
        }
        Ok(Profile::from_path_stats(&stats))
    }

    /// Reads and aggregates a recorded JSONL telemetry file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`Profile::from_jsonl_str`] errors.
    pub fn from_jsonl_path(path: impl AsRef<std::path::Path>) -> Result<Profile, String> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Profile::from_jsonl_str(&text)
    }

    /// Root nodes of the tree, in name order.
    pub fn roots(&self) -> impl Iterator<Item = &ProfileNode> {
        self.roots.values()
    }

    /// `true` when no spans were aggregated.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Per-name rollup across all paths: flat totals that match the
    /// recorder's [`Recorder::span_stats`] for the same run.
    pub fn flat_totals(&self) -> BTreeMap<String, SpanStat> {
        let mut flat: BTreeMap<String, SpanStat> = BTreeMap::new();
        let mut stack: Vec<&ProfileNode> = self.roots.values().collect();
        while let Some(node) = stack.pop() {
            let stat = flat.entry(node.name.clone()).or_default();
            stat.count += node.count;
            stat.total_micros += node.total_micros;
            stack.extend(node.children.values());
        }
        flat
    }

    /// Sum of root totals — the profile's accounted wall-clock.
    pub fn total_micros(&self) -> u64 {
        self.roots.values().map(|n| n.total_micros).sum()
    }

    /// Renders the aligned span-tree report: one row per path, children
    /// indented under parents and sorted by total time (descending), with
    /// count, total, self, p50 and p99 columns.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "profile: no spans recorded\n".into();
        }
        // First pass: collect rows to size the name column.
        let mut rows: Vec<(usize, &ProfileNode)> = Vec::new();
        fn walk<'a>(
            nodes: &'a BTreeMap<String, ProfileNode>,
            depth: usize,
            out: &mut Vec<(usize, &'a ProfileNode)>,
        ) {
            let mut ordered: Vec<&ProfileNode> = nodes.values().collect();
            ordered.sort_by(|a, b| {
                b.total_micros
                    .cmp(&a.total_micros)
                    .then_with(|| a.name.cmp(&b.name))
            });
            for n in ordered {
                out.push((depth, n));
                walk(&n.children, depth + 1, out);
            }
        }
        walk(&self.roots, 0, &mut rows);
        let name_width = rows
            .iter()
            .map(|(d, n)| 2 * d + n.name.len())
            .max()
            .unwrap_or(4)
            .max("span tree".len());

        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "span tree", "count", "total", "self", "p50", "p99"
        ));
        for (depth, node) in rows {
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                format!("{}{}", "  ".repeat(depth), node.name),
                node.count,
                fmt_micros(node.total_micros as f64),
                fmt_micros(node.self_micros() as f64),
                fmt_micros(node.p50_micros()),
                fmt_micros(node.p99_micros()),
            ));
        }
        out
    }

    /// Renders the allocation tree: the same span hierarchy as
    /// [`Profile::render`], but with allocation columns — call count,
    /// total/self allocation counts and total/self allocated bytes —
    /// sorted by total allocated bytes (descending). `fhdnn profile
    /// --mem` prints this next to the time tree.
    pub fn render_mem(&self) -> String {
        if self.is_empty() {
            return "profile: no spans recorded\n".into();
        }
        let mut rows: Vec<(usize, &ProfileNode)> = Vec::new();
        fn walk<'a>(
            nodes: &'a BTreeMap<String, ProfileNode>,
            depth: usize,
            out: &mut Vec<(usize, &'a ProfileNode)>,
        ) {
            let mut ordered: Vec<&ProfileNode> = nodes.values().collect();
            ordered.sort_by(|a, b| {
                b.alloc_bytes
                    .cmp(&a.alloc_bytes)
                    .then_with(|| a.name.cmp(&b.name))
            });
            for n in ordered {
                out.push((depth, n));
                walk(&n.children, depth + 1, out);
            }
        }
        walk(&self.roots, 0, &mut rows);
        let name_width = rows
            .iter()
            .map(|(d, n)| 2 * d + n.name.len())
            .max()
            .unwrap_or(4)
            .max("allocation tree".len());

        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_width$}  {:>8}  {:>10}  {:>10}  {:>11}  {:>11}\n",
            "allocation tree", "count", "allocs", "self", "bytes", "self"
        ));
        for (depth, node) in rows {
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>10}  {:>10}  {:>11}  {:>11}\n",
                format!("{}{}", "  ".repeat(depth), node.name),
                node.count,
                node.allocs,
                node.self_allocs(),
                fmt_bytes(node.alloc_bytes),
                fmt_bytes(node.self_alloc_bytes()),
            ));
        }
        out
    }

    /// Collapsed-stack export: one `path;leaf weight` line per node with
    /// nonzero self time, weights in microseconds — the input format of
    /// `flamegraph.pl` and `inferno-flamegraph`.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        fn walk(prefix: &str, nodes: &BTreeMap<String, ProfileNode>, out: &mut String) {
            for node in nodes.values() {
                let path = if prefix.is_empty() {
                    node.name.clone()
                } else {
                    format!("{prefix}{PATH_SEPARATOR}{}", node.name)
                };
                let own = node.self_micros();
                if own > 0 {
                    out.push_str(&path);
                    out.push(' ');
                    out.push_str(&own.to_string());
                    out.push('\n');
                }
                walk(&path, &node.children, out);
            }
        }
        walk("", &self.roots, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    fn fixture_recorder() -> (crate::Telemetry, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let clock = Arc::new(ManualClock::new(10));
        let tel = Recorder::with_sink_and_clock(sink.clone(), clock);
        for _ in 0..3 {
            let _round = tel.span("round");
            {
                let _t = tel.span("transmit");
                let _q = tel.span("quantize");
            }
            let _e = tel.span("eval");
        }
        (tel, sink)
    }

    #[test]
    fn tree_structure_and_self_time() {
        let (tel, _) = fixture_recorder();
        let p = Profile::from_recorder(&tel);
        let round = p.roots().next().unwrap();
        assert_eq!(round.name, "round");
        assert_eq!(round.count, 3);
        assert_eq!(round.children.len(), 2);
        let transmit = &round.children["transmit"];
        assert_eq!(transmit.count, 3);
        assert_eq!(transmit.children["quantize"].count, 3);
        // Inclusive totals nest: parent >= child, self = total - children.
        assert!(transmit.total_micros >= transmit.children["quantize"].total_micros);
        assert_eq!(
            transmit.self_micros(),
            transmit.total_micros - transmit.children["quantize"].total_micros
        );
        assert!(round.total_micros >= transmit.total_micros);
    }

    #[test]
    fn flat_totals_agree_with_recorder_span_stats() {
        let (tel, _) = fixture_recorder();
        let p = Profile::from_recorder(&tel);
        assert_eq!(p.flat_totals(), tel.span_stats());
    }

    #[test]
    fn render_is_aligned_and_ordered() {
        let (tel, _) = fixture_recorder();
        let report = Profile::from_recorder(&tel).render();
        let lines: Vec<&str> = report.lines().collect();
        assert!(lines[0].contains("span tree"));
        assert!(lines[0].contains("p99"));
        // Children are indented under the root.
        assert!(report.contains("\nround "), "{report}");
        assert!(report.contains("\n  transmit"), "{report}");
        assert!(report.contains("\n    quantize"), "{report}");
        // All rows share the header's column structure.
        let header_cols = lines[0].split_whitespace().count();
        assert!(header_cols >= 6);
        assert!(Profile::default().render().contains("no spans"));
    }

    #[test]
    fn collapsed_stacks_are_flamegraph_shaped() {
        let (tel, _) = fixture_recorder();
        let folded = Profile::from_recorder(&tel).collapsed();
        assert!(folded.contains("round;transmit;quantize "), "{folded}");
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            assert!(weight.parse::<u64>().unwrap() > 0, "{line}");
        }
    }

    #[test]
    fn offline_jsonl_replay_matches_live_profile() {
        let (tel, sink) = fixture_recorder();
        let stream = sink
            .events()
            .iter()
            .map(crate::event::Event::to_json)
            .collect::<Vec<_>>()
            .join("\n");
        let live = Profile::from_recorder(&tel);
        let replayed = Profile::from_jsonl_str(&stream).unwrap();
        assert_eq!(replayed.flat_totals(), live.flat_totals());
        assert_eq!(replayed.total_micros(), live.total_micros());
        assert_eq!(replayed.render(), live.render());
        // The allocation columns survive the JSONL round trip too.
        assert_eq!(replayed.render_mem(), live.render_mem());
    }

    #[test]
    fn mem_tree_renders_allocation_columns() {
        let tel = Recorder::in_memory();
        {
            let _outer = tel.span("round");
            let _inner = tel.span("round.local_train");
            let v: Vec<u8> = Vec::with_capacity(50_000);
            drop(v);
        }
        let p = Profile::from_recorder(&tel);
        let report = p.render_mem();
        assert!(report.contains("allocation tree"), "{report}");
        assert!(report.contains("bytes"), "{report}");
        assert!(report.contains("\n  round.local_train"), "{report}");
        assert!(report.contains("KiB"), "the 50 KB vec shows up: {report}");
        // Inclusive nesting: the parent's bytes cover the child's.
        let round = p.roots().next().unwrap();
        let child = &round.children["round.local_train"];
        assert!(child.alloc_bytes >= 50_000);
        assert!(round.alloc_bytes >= child.alloc_bytes);
        assert_eq!(
            round.self_alloc_bytes(),
            round.alloc_bytes - child.alloc_bytes
        );
        assert!(Profile::default().render_mem().contains("no spans"));
    }

    #[test]
    fn jsonl_without_paths_degrades_to_flat_tree() {
        let stream = r#"
{"ts":1,"kind":"span","name":"a","fields":{"micros":10}}
{"ts":2,"kind":"span","name":"a","fields":{"micros":20}}
{"ts":3,"kind":"counter","name":"c","fields":{"delta":1,"total":1}}
not json at all
"#;
        let p = Profile::from_jsonl_str(stream).unwrap();
        let a = p.roots().next().unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.total_micros, 30);
        assert!(a.children.is_empty());
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(Profile::from_jsonl_str("").is_err());
        assert!(Profile::from_jsonl_str("{\"kind\":\"gauge\"}").is_err());
    }
}
