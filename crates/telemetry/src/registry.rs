//! The workspace metric-name registry: the single source of truth for
//! every span, counter, gauge, histogram and event name the stack emits.
//!
//! Producers pass these names as string literals at instrumentation
//! sites; `fhdnn-lint`'s `telemetry/*` rules cross-check every literal
//! call site against this table and fail the build on unregistered or
//! orphaned names. Consumers — the `fhdnn watch` dashboard, the
//! [`crate::alert::AlertEngine`] event emitter, and the Prometheus
//! exporter — import the named constants below instead of repeating the
//! literals, so a rename that forgets one side cannot slip through: the
//! registry entry, the producer literal, and the consumer constant must
//! all move together or the lint (or the compiler) complains.
//!
//! Keep [`REGISTRY`] sorted by name; [`lookup`] binary-searches it and a
//! unit test enforces order and uniqueness.

/// What a registered name counts, times, or announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter fed through `Recorder::incr`.
    Counter,
    /// Last-value gauge fed through `Recorder::gauge`.
    Gauge,
    /// Log2-bucket histogram fed through `Recorder::observe`.
    Histogram,
    /// Timed span opened via `Recorder::span` or `TaskBuffer::begin`.
    Span,
    /// Free-form point event emitted via `Recorder::event`.
    Event,
}

impl MetricKind {
    /// Lower-case label used in reports and lint messages.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Span => "span",
            MetricKind::Event => "event",
        }
    }
}

/// One registered metric name.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The exact name passed to the recorder.
    pub name: &'static str,
    /// The kind of instrument this name may be used with.
    pub kind: MetricKind,
    /// One-line description (doubles as Prometheus HELP text).
    pub help: &'static str,
}

/// Name of the per-round model-health flight-record event
/// (consumed by `fhdnn watch` and the Prometheus exporter).
pub const EVENT_HEALTH_ROUND: &str = "health.round";

/// Name of the structured alert event the
/// [`crate::alert`] machinery emits and the dashboard replays.
pub const EVENT_ALERT: &str = "alert";

/// Name of the per-round execution-trace summary event (critical path,
/// worker utilization, queue depth) consumed by `fhdnn watch`/`trace`.
pub const EVENT_TRACE_ROUND: &str = "trace.round";

/// Name of the per-task execution-trace event carrying one
/// [`crate::trace::TaskTrace`] (replayed by `fhdnn trace --from`).
pub const EVENT_TRACE_TASK: &str = "trace.task";

/// Every name the workspace is allowed to emit, sorted by name.
pub const REGISTRY: &[MetricDef] = &[
    MetricDef {
        name: "alert",
        kind: MetricKind::Event,
        help: "Structured alert fired by the rule-based alert engine.",
    },
    MetricDef {
        name: "chan.bits_flipped",
        kind: MetricKind::Counter,
        help: "Bits the channel flipped this round.",
    },
    MetricDef {
        name: "chan.crc_rejects",
        kind: MetricKind::Counter,
        help: "Packets rejected by CRC-32 verification this round.",
    },
    MetricDef {
        name: "chan.dims_erased",
        kind: MetricKind::Counter,
        help: "Dimensions the channel erased to zero this round.",
    },
    MetricDef {
        name: "chan.noise_energy",
        kind: MetricKind::Gauge,
        help: "Noise energy injected by analog channels this round.",
    },
    MetricDef {
        name: "chan.packets_dropped",
        kind: MetricKind::Counter,
        help: "Whole packets dropped by erasure channels this round.",
    },
    MetricDef {
        name: "chan.symbols_sent",
        kind: MetricKind::Counter,
        help: "Symbols (f32 lanes, words, or bipolar dims) transmitted.",
    },
    MetricDef {
        name: "chan.transmissions",
        kind: MetricKind::Counter,
        help: "transmit_* calls accounted by the channel stats.",
    },
    MetricDef {
        name: "chan.uplink",
        kind: MetricKind::Span,
        help: "One client update crossing the impaired uplink.",
    },
    MetricDef {
        name: "fl.bytes_down",
        kind: MetricKind::Counter,
        help: "Bytes broadcast downlink to participants.",
    },
    MetricDef {
        name: "fl.bytes_up",
        kind: MetricKind::Counter,
        help: "Bytes uploaded by participants.",
    },
    MetricDef {
        name: "fl.packed_uplink_words",
        kind: MetricKind::Counter,
        help: "Packed u64 sign words uplinked by arrived binary updates.",
    },
    MetricDef {
        name: "fl.participants",
        kind: MetricKind::Counter,
        help: "Clients sampled across rounds.",
    },
    MetricDef {
        name: "fl.round_micros",
        kind: MetricKind::Histogram,
        help: "Distribution of per-round wall time in microseconds.",
    },
    MetricDef {
        name: "fl.rounds",
        kind: MetricKind::Counter,
        help: "Communication rounds completed.",
    },
    MetricDef {
        name: "fl.stragglers",
        kind: MetricKind::Counter,
        help: "Sampled clients whose update never arrived.",
    },
    MetricDef {
        name: "fl.test_accuracy",
        kind: MetricKind::Gauge,
        help: "Global-model accuracy on the held-out test set.",
    },
    MetricDef {
        name: "hdc.encode",
        kind: MetricKind::Span,
        help: "Batch hypervector encoding (projection + binarization).",
    },
    MetricDef {
        name: "hdc.encoded_vectors",
        kind: MetricKind::Counter,
        help: "Feature vectors encoded into hypervectors.",
    },
    MetricDef {
        name: "hdc.project",
        kind: MetricKind::Span,
        help: "Random-projection matmul inside the encoder.",
    },
    MetricDef {
        name: "hdc.quant.saturated_words",
        kind: MetricKind::Counter,
        help: "Quantizer words clipped at the AGC range boundary.",
    },
    MetricDef {
        name: "hdc.quant.zeroed_words",
        kind: MetricKind::Counter,
        help: "Quantizer words squashed to zero by the AGC step.",
    },
    MetricDef {
        name: "hdc.quantize",
        kind: MetricKind::Span,
        help: "Prototype quantization for transport.",
    },
    MetricDef {
        name: "hdc.sign",
        kind: MetricKind::Span,
        help: "Sign binarization inside the encoder.",
    },
    MetricDef {
        name: "health.round",
        kind: MetricKind::Event,
        help: "Per-round model-health flight record.",
    },
    MetricDef {
        name: "mem.alloc_bytes",
        kind: MetricKind::Counter,
        help: "Bytes allocated during federated rounds (gross).",
    },
    MetricDef {
        name: "mem.allocs",
        kind: MetricKind::Counter,
        help: "Heap allocations performed during federated rounds.",
    },
    MetricDef {
        name: "mem.live_bytes",
        kind: MetricKind::Gauge,
        help: "Live heap bytes at the end of the latest round.",
    },
    MetricDef {
        name: "mem.peak_bytes",
        kind: MetricKind::Gauge,
        help: "Peak heap bytes above the round-start level, latest round.",
    },
    MetricDef {
        name: "round",
        kind: MetricKind::Span,
        help: "One full communication round.",
    },
    MetricDef {
        name: "round.aggregate",
        kind: MetricKind::Span,
        help: "Server-side aggregation of arrived updates.",
    },
    MetricDef {
        name: "round.broadcast",
        kind: MetricKind::Span,
        help: "Global-model broadcast to participants.",
    },
    MetricDef {
        name: "round.eval",
        kind: MetricKind::Span,
        help: "Held-out evaluation of the aggregated model.",
    },
    MetricDef {
        name: "round.local_train",
        kind: MetricKind::Span,
        help: "One client's local training pass.",
    },
    MetricDef {
        name: "round.transmit",
        kind: MetricKind::Span,
        help: "One client's update leaving for the server.",
    },
    MetricDef {
        name: "telemetry.overhead.events",
        kind: MetricKind::Counter,
        help: "Telemetry events emitted per round — the observability layer metering itself.",
    },
    MetricDef {
        name: "telemetry.overhead.jsonl_bytes",
        kind: MetricKind::Counter,
        help: "JSONL bytes serialized per round by the telemetry sink.",
    },
    MetricDef {
        name: "trace.dropped",
        kind: MetricKind::Counter,
        help: "Task traces evicted from the bounded trace ring.",
    },
    MetricDef {
        name: "trace.round",
        kind: MetricKind::Event,
        help: "Per-round execution-trace summary: critical path, worker utilization, queue depth.",
    },
    MetricDef {
        name: "trace.task",
        kind: MetricKind::Event,
        help: "One traced unit of client work: measured worker timing + simulated AIoT cost.",
    },
    MetricDef {
        name: "trace.tasks",
        kind: MetricKind::Counter,
        help: "Client tasks traced by the round engine.",
    },
    MetricDef {
        name: "trace.worker_utilization",
        kind: MetricKind::Gauge,
        help: "Fraction of pool-worker capacity spent executing, latest round.",
    },
];

/// Identifier → metric-name map for the named constants above.
///
/// `fhdnn-lint`'s orphan detection counts a registry entry as used when
/// its name appears as a string literal at an instrumentation site *or*
/// when one of these constant identifiers is referenced — so consumers
/// that import the constants (the dashboard, the alert emitter) keep
/// their names alive without duplicating the literal.
pub const CONSTANTS: &[(&str, &str)] = &[
    ("EVENT_ALERT", EVENT_ALERT),
    ("EVENT_HEALTH_ROUND", EVENT_HEALTH_ROUND),
    ("EVENT_TRACE_ROUND", EVENT_TRACE_ROUND),
    ("EVENT_TRACE_TASK", EVENT_TRACE_TASK),
];

/// Looks up a name in [`REGISTRY`].
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    REGISTRY
        .binary_search_by(|def| def.name.cmp(name))
        .ok()
        .map(|i| &REGISTRY[i])
}

/// `true` when `name` is a registered metric name.
pub fn is_registered(name: &str) -> bool {
    lookup(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "registry must stay sorted/unique: {} >= {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn lookup_finds_every_entry() {
        for def in REGISTRY {
            let hit = lookup(def.name).expect("registered name must resolve");
            assert_eq!(hit.name, def.name);
            assert_eq!(hit.kind, def.kind);
        }
        assert!(lookup("no.such.metric").is_none());
        assert!(!is_registered(""));
    }

    #[test]
    fn consumer_constants_are_registered_events() {
        for name in [
            EVENT_HEALTH_ROUND,
            EVENT_ALERT,
            EVENT_TRACE_ROUND,
            EVENT_TRACE_TASK,
        ] {
            let def = lookup(name).expect("constant must be registered");
            assert_eq!(def.kind, MetricKind::Event);
        }
    }

    #[test]
    fn every_entry_documents_itself() {
        for def in REGISTRY {
            assert!(!def.help.is_empty(), "{} needs help text", def.name);
            assert!(!def.kind.as_str().is_empty());
        }
    }
}
