//! Pluggable event sinks.
//!
//! A sink receives every [`Event`] the recorder emits. Three
//! implementations cover the intended deployments:
//!
//! - [`NoopSink`] — discards events; combined with a disabled recorder the
//!   instrumentation cost is one branch per call site,
//! - [`MemorySink`] — buffers events for tests and programmatic queries,
//! - [`JsonlSink`] — appends one JSON line per event to a file.

use std::fmt::Debug;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// A destination for telemetry events.
pub trait Sink: Debug + Send + Sync {
    /// Accepts one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}

    /// Total bytes this sink has serialized, newlines included (0 for
    /// sinks that do not write bytes). Feeds the
    /// `telemetry.overhead.jsonl_bytes` self-metering counter.
    fn bytes_written(&self) -> u64 {
        0
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Buffers events in memory; intended for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    bytes: AtomicU64,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        // Account the bytes the JSONL form *would* occupy, so in-memory
        // tests exercise the same overhead metering as file-backed runs.
        // ORDERING: Relaxed — monotonic byte tally; the Mutex on the
        // event buffer carries the actual publication edge.
        self.bytes
            .fetch_add(event.to_json().len() as u64 + 1, Ordering::Relaxed);
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }

    // ORDERING: Relaxed — reads an eventual total of a monotonic tally.
    fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Appends one JSON line per event to a file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    bytes: AtomicU64,
}

impl JsonlSink {
    /// Creates (truncating) the output file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            bytes: AtomicU64::new(0),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_json();
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // Telemetry must never take the run down: I/O errors are dropped.
        let _ = writeln!(w, "{line}");
        // ORDERING: Relaxed — monotonic byte tally under the held lock.
        self.bytes
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }

    // ORDERING: Relaxed — reads an eventual total of a monotonic tally.
    fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        for i in 0..3 {
            sink.record(&Event::new(i, EventKind::Event, "e", &[]));
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].ts, 2);
    }

    /// Regression test for the parallel round engine: many threads
    /// recording through one `JsonlSink` must never interleave partial
    /// lines. The whole line is formatted and written under the sink's
    /// writer lock, so every line in the file parses on its own and the
    /// per-thread event counts all survive.
    #[test]
    fn concurrent_writers_never_interleave_lines() {
        use std::sync::Arc;

        const THREADS: usize = 8;
        const EVENTS_PER_THREAD: usize = 250;

        let path = std::env::temp_dir().join(format!(
            "fhdnn_telemetry_concurrent_{}.jsonl",
            std::process::id()
        ));
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..EVENTS_PER_THREAD {
                        // Long names force BufWriter flushes mid-stream,
                        // the regime where torn writes would show up.
                        let name = format!("thread{t}.event{i}.{}", "x".repeat(200));
                        sink.record(&Event::new(
                            i as u64,
                            EventKind::Counter,
                            &name,
                            &[("delta", 1u64.into())],
                        ));
                    }
                });
            }
        });
        sink.flush();

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.ends_with('\n'), "stream must end on a line boundary");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), THREADS * EVENTS_PER_THREAD);
        let mut per_thread = [0usize; THREADS];
        for line in lines {
            let v = crate::jsonl::parse(line).expect("torn or interleaved JSONL line");
            let name = v.get("name").and_then(|n| n.as_str()).unwrap();
            let t: usize = name
                .strip_prefix("thread")
                .and_then(|rest| rest.split('.').next())
                .and_then(|id| id.parse().ok())
                .unwrap();
            per_thread[t] += 1;
        }
        assert!(per_thread.iter().all(|&n| n == EVENTS_PER_THREAD));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("fhdnn_telemetry_sink_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event::new(
            1,
            EventKind::Counter,
            "c",
            &[("delta", 2u64.into())],
        ));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.trim(),
            r#"{"ts":1,"kind":"counter","name":"c","fields":{"delta":2}}"#
        );
        std::fs::remove_file(&path).ok();
    }
}
