//! Fleet-scale mergeable sketches: bounded-error quantiles, distinct
//! cohort cardinality, and deterministic exemplar sampling.
//!
//! The per-client observability layers (health records, divergence
//! z-scores, task traces) emit or materialize one row per client, which
//! makes the telemetry itself the scaling wall on AIoT-sized fleets.
//! This module provides the O(1)-per-round alternative: every per-client
//! observation folds into a constant-size summary, and summaries from
//! different workers merge without loss.
//!
//! Three building blocks, all std-only and fully deterministic:
//!
//! - [`QuantileSketch`] — a DDSketch-style log-bucket quantile sketch
//!   over non-negative values. Bucket indices are derived from the raw
//!   f64 bit pattern (exponent plus the top [`MANTISSA_BITS`] mantissa
//!   bits), so no transcendental math is involved and the same value
//!   lands in the same bucket on every platform. Quantile estimates are
//!   bucket midpoints with guaranteed relative error at most
//!   [`QuantileSketch::MAX_RELATIVE_ERROR`].
//! - [`DistinctEstimator`] — a HyperLogLog-style distinct-count
//!   estimator over client ids, hashed with the same splitmix64
//!   finalizer the round engine uses for seed splitting.
//! - [`TopK`] / [`Reservoir`] — bounded exemplar samplers. `TopK` keeps
//!   the k worst offenders under a total order (score descending, id
//!   ascending on ties), which is insertion-order-invariant by
//!   construction. `Reservoir` is a seeded Algorithm-R sampler whose
//!   output is a pure function of `(seed, insertion order)` — engines
//!   feed it in fixed participant order, so results are byte-identical
//!   at any thread count.
//!
//! # Determinism contract
//!
//! Every structure here is integer-counted (or exact-f64 min/max), so
//! merging is associative and commutative: per-thread sketches merged in
//! *any* order produce the same state as serial observation. The round
//! engines still merge in fixed participant order at the barrier — the
//! same discipline as task-buffer absorption — so the event stream
//! around the sketches stays ordered too. Serialization
//! ([`QuantileSketch::encode`]) walks sorted buckets and prints exact
//! bit patterns for the min/max, making the wire form byte-stable.

use std::collections::BTreeMap;

/// Mantissa bits used to subdivide each power-of-two octave. 4 bits =
/// 16 log-linear sub-buckets per octave, bounding the midpoint estimate
/// error at 1/32 of the true value.
pub const MANTISSA_BITS: u32 = 4;

/// The splitmix64 finalizer: full 64-bit avalanche, the same mixer the
/// round engine's `split_seed` uses. Deterministic on every platform.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, mergeable log-bucket quantile sketch over
/// non-negative f64 observations.
///
/// Zero, negative, and non-finite observations land in a dedicated zero
/// bucket (estimated as exactly 0.0). Positive normal values bucket by
/// exponent and top-[`MANTISSA_BITS`] mantissa bits; subnormals collapse
/// into the zero bucket (they are far below any observable telemetry
/// value).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSketch {
    /// Observations in the zero bucket (zero/negative/non-finite).
    zeros: u64,
    /// Log-bucket index → observation count, sorted by construction.
    buckets: BTreeMap<u32, u64>,
    /// Total observations (zeros included).
    count: u64,
    /// Exact minimum observed value (after clamping to `>= 0`).
    min: f64,
    /// Exact maximum observed value (after clamping to `>= 0`).
    max: f64,
}

impl QuantileSketch {
    /// Guaranteed bound on `|estimate - true| / true` for any quantile
    /// of positive observations: half of one sub-bucket's width.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 32.0;

    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Bucket index of a positive normal value: biased exponent joined
    /// with the top mantissa bits, a pure function of the bit pattern.
    fn bucket_of(v: f64) -> Option<u32> {
        if !v.is_finite() || v <= 0.0 {
            return None;
        }
        let bits = v.to_bits();
        let exponent = ((bits >> 52) & 0x7ff) as u32;
        if exponent == 0 {
            return None; // subnormal → zero bucket
        }
        let mantissa_top = ((bits >> (52 - MANTISSA_BITS)) & ((1 << MANTISSA_BITS) - 1)) as u32;
        Some((exponent << MANTISSA_BITS) | mantissa_top)
    }

    /// Midpoint of a bucket's value range — the estimate reported for
    /// every observation that landed in it.
    fn bucket_midpoint(index: u32) -> f64 {
        let exponent = u64::from(index >> MANTISSA_BITS);
        let mantissa_top = u64::from(index & ((1 << MANTISSA_BITS) - 1));
        let lo = f64::from_bits((exponent << 52) | (mantissa_top << (52 - MANTISSA_BITS)));
        let hi = f64::from_bits(
            ((exponent << 52) | (mantissa_top << (52 - MANTISSA_BITS)))
                + (1u64 << (52 - MANTISSA_BITS)),
        );
        (lo + hi) / 2.0
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let bucket = Self::bucket_of(v);
        // Anything in the zero bucket reports as exactly 0, so min/max
        // must see the same clamped value (subnormals included).
        let clamped = if bucket.is_some() { v } else { 0.0 };
        match bucket {
            Some(idx) => *self.buckets.entry(idx).or_insert(0) += 1,
            None => self.zeros += 1,
        }
        if self.count == 0 {
            self.min = clamped;
            self.max = clamped;
        } else {
            self.min = self.min.min(clamped);
            self.max = self.max.max(clamped);
        }
        self.count += 1;
    }

    /// Merges another sketch into this one. Integer count addition and
    /// exact min/max, so merging is associative, commutative, and
    /// byte-stable regardless of merge order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.zeros += other.zeros;
        self.count += other.count;
        for (idx, n) in &other.buckets {
            *self.buckets.entry(*idx).or_insert(0) += n;
        }
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum observed value (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The quantile estimate for `q` in `[0,1]` (clamped; NaN treated
    /// as 0). Empty sketches report 0. Estimates for positive
    /// observations are bucket midpoints clamped into `[min, max]`,
    /// which keeps the relative-error bound and makes `quantile(0)` /
    /// `quantile(1)` exact.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        // Nearest-rank on the 0-based rank line.
        let target = (q * (self.count - 1) as f64).round() as u64;
        if target < self.zeros {
            return 0.0;
        }
        let mut cum = self.zeros;
        for (idx, n) in &self.buckets {
            cum += n;
            if target < cum {
                return Self::bucket_midpoint(*idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Byte-stable wire form: counts, exact min/max bit patterns, and
    /// the sorted `index:count` bucket list.
    #[must_use]
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "n={};z={};min={:016x};max={:016x};b=",
            self.count,
            self.zeros,
            self.min().to_bits(),
            self.max().to_bits()
        );
        for (i, (idx, n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{idx}:{n}");
        }
        out
    }

    /// Exact minimum observed value (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Parses the [`QuantileSketch::encode`] wire form. Returns `None`
    /// on any malformed field, never panics on foreign input.
    #[must_use]
    pub fn decode(s: &str) -> Option<QuantileSketch> {
        let mut sketch = QuantileSketch::new();
        for part in s.split(';') {
            let (key, val) = part.split_once('=')?;
            match key {
                "n" => sketch.count = val.parse().ok()?,
                "z" => sketch.zeros = val.parse().ok()?,
                "min" => sketch.min = f64::from_bits(u64::from_str_radix(val, 16).ok()?),
                "max" => sketch.max = f64::from_bits(u64::from_str_radix(val, 16).ok()?),
                "b" => {
                    for pair in val.split(',').filter(|p| !p.is_empty()) {
                        let (idx, n) = pair.split_once(':')?;
                        sketch.buckets.insert(idx.parse().ok()?, n.parse().ok()?);
                    }
                }
                _ => return None,
            }
        }
        Some(sketch)
    }
}

/// Number of HyperLogLog registers (2^8): ~6.5% standard error, 256
/// bytes of state — plenty for fleet cohort cardinality.
pub const DISTINCT_REGISTERS: usize = 256;

/// A HyperLogLog-style distinct-count estimator over u64 identities.
///
/// Insertion hashes with [`splitmix64`]; merging takes the
/// register-wise max, so it is associative, commutative, and
/// idempotent. The estimate is a deterministic function of the
/// registers (iterated in index order).
#[derive(Clone, PartialEq, Eq)]
pub struct DistinctEstimator {
    registers: [u8; DISTINCT_REGISTERS],
}

impl std::fmt::Debug for DistinctEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistinctEstimator")
            .field("estimate", &self.estimate())
            .finish()
    }
}

impl Default for DistinctEstimator {
    fn default() -> Self {
        DistinctEstimator {
            registers: [0; DISTINCT_REGISTERS],
        }
    }
}

impl DistinctEstimator {
    /// An empty estimator.
    #[must_use]
    pub fn new() -> Self {
        DistinctEstimator::default()
    }

    /// Inserts one identity (idempotent).
    // BOUNDS: idx = h >> 56 < 256 = DISTINCT_REGISTERS, the register
    // array's fixed length.
    pub fn insert(&mut self, id: u64) {
        let h = splitmix64(id);
        let idx = (h >> 56) as usize;
        let rest = h << 8;
        let rho = if rest == 0 {
            57
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Merges another estimator into this one (register-wise max).
    pub fn merge(&mut self, other: &DistinctEstimator) {
        for (r, o) in self.registers.iter_mut().zip(other.registers.iter()) {
            if *o > *r {
                *r = *o;
            }
        }
    }

    /// The estimated distinct count, with the standard small-range
    /// correction. Exact 0 for an empty estimator.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        // BOUNDS: f64 divisions cannot trap; the zeros divisor is
        // taken only on the `zeros > 0` branch, and inv_sum > 0 past
        // the all-zeros early return.
        let m = DISTINCT_REGISTERS as f64;
        let mut inv_sum = 0.0f64;
        let mut zeros = 0u64;
        for &r in &self.registers {
            inv_sum += 1.0 / (1u64 << u32::from(r.min(63))) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        if zeros == DISTINCT_REGISTERS as u64 {
            return 0.0;
        }
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / inv_sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting in the small range.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// The estimate rounded to the nearest integer count.
    #[must_use]
    pub fn estimate_rounded(&self) -> u64 {
        self.estimate().round().max(0.0) as u64
    }
}

/// One kept exemplar: a client id and the score that earned its slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Client identity.
    pub id: u64,
    /// The offending score (|z|, damage, simulated cost, …).
    pub score: f64,
}

/// A bounded worst-offender sampler: keeps the `k` entries with the
/// highest scores under the total order (score descending, id
/// ascending on ties). Insertion order cannot affect the kept set, so
/// per-thread samplers merged in any order agree with serial insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    k: usize,
    entries: Vec<Exemplar>,
}

impl TopK {
    /// A sampler keeping at most `k` exemplars.
    #[must_use]
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            entries: Vec::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offers one candidate. NaN scores are ignored.
    pub fn offer(&mut self, id: u64, score: f64) {
        if self.k == 0 || score.is_nan() {
            return;
        }
        self.entries.push(Exemplar { id, score });
        self.entries
            .sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        self.entries
            .dedup_by(|a, b| a.id == b.id && a.score == b.score);
        self.entries.truncate(self.k);
    }

    /// Merges another sampler's kept set into this one.
    pub fn merge(&mut self, other: &TopK) {
        for e in &other.entries {
            self.offer(e.id, e.score);
        }
    }

    /// The kept exemplars, highest score first.
    #[must_use]
    pub fn entries(&self) -> &[Exemplar] {
        &self.entries
    }
}

/// A seeded Algorithm-R reservoir sampler over item indices.
///
/// `offer()` returns where the caller should store the offered item:
/// `Keep(slot)` means "place it at `slot`" (either filling the
/// reservoir or replacing a previous item), `Skip` means drop it. The
/// decision stream is a pure function of `(seed, offer sequence)` —
/// callers must offer in a fixed order (the engines use participant
/// order at the barrier) for cross-thread determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservoir {
    k: usize,
    seen: u64,
    state: u64,
}

/// The verdict of one [`Reservoir::offer`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sample {
    /// Store the offered item at this reservoir slot.
    Keep(usize),
    /// Drop the offered item.
    Skip,
}

impl Reservoir {
    /// A reservoir of capacity `k` with a deterministic decision stream
    /// derived from `seed`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        Reservoir {
            k,
            seen: 0,
            state: seed,
        }
    }

    /// Offers the next item in sequence; returns where to store it (if
    /// at all). The first `k` offers always land in order.
    // BOUNDS: the `% self.seen` divisor is nonzero — seen was just
    // incremented and never wraps within a process lifetime.
    pub fn offer(&mut self) -> Sample {
        self.seen += 1;
        if self.k == 0 {
            return Sample::Skip;
        }
        if self.seen <= self.k as u64 {
            return Sample::Keep((self.seen - 1) as usize);
        }
        self.state = self.state.wrapping_add(1);
        let draw = splitmix64(self.state) % self.seen;
        if draw < self.k as u64 {
            Sample::Keep(draw as usize)
        } else {
            Sample::Skip
        }
    }

    /// Items offered so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_series_respect_error_bound() {
        let mut s = QuantileSketch::new();
        for i in 1..=1000u64 {
            s.observe(i as f64);
        }
        assert_eq!(s.count(), 1000);
        for (q, truth) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = s.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(
                rel <= QuantileSketch::MAX_RELATIVE_ERROR + 1e-3,
                "q={q}: est {est} vs {truth} (rel {rel})"
            );
        }
        assert_eq!(s.quantile(0.0), 1.0, "q=0 is the exact min");
        assert_eq!(s.quantile(1.0), 1000.0, "q=1 is the exact max");
    }

    #[test]
    fn zeros_negatives_and_non_finite_collapse_to_zero_bucket() {
        let mut s = QuantileSketch::new();
        for v in [0.0, -3.5, f64::NAN, f64::INFINITY, 1e-320] {
            s.observe(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.max(), 0.0);
        let empty = QuantileSketch::new();
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(
            empty.encode(),
            QuantileSketch::decode(&empty.encode()).unwrap().encode()
        );
    }

    #[test]
    fn merge_equals_serial_observation() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 91) as f64 + 0.25).collect();
        let mut serial = QuantileSketch::new();
        for &v in &values {
            serial.observe(v);
        }
        // Split across 3 "threads", merge in a scrambled order.
        let mut parts = [
            QuantileSketch::new(),
            QuantileSketch::new(),
            QuantileSketch::new(),
        ];
        for (i, &v) in values.iter().enumerate() {
            parts[i % 3].observe(v);
        }
        let mut merged = QuantileSketch::new();
        for i in [2, 0, 1] {
            merged.merge(&parts[i]);
        }
        assert_eq!(merged, serial);
        assert_eq!(merged.encode(), serial.encode());
    }

    #[test]
    fn encode_decode_round_trips_byte_stable() {
        let mut s = QuantileSketch::new();
        for v in [0.5, 12.0, 12.0, 99.75, 0.0, 1e9] {
            s.observe(v);
        }
        let wire = s.encode();
        let back = QuantileSketch::decode(&wire).expect("wire form parses");
        assert_eq!(back, s);
        assert_eq!(back.encode(), wire);
        assert!(QuantileSketch::decode("not a sketch").is_none());
        assert!(QuantileSketch::decode("n=3;z=0;min=zz;max=0;b=").is_none());
    }

    #[test]
    fn distinct_estimator_tracks_cardinality() {
        let mut d = DistinctEstimator::new();
        assert_eq!(d.estimate_rounded(), 0);
        for id in 0..100u64 {
            d.insert(id);
            d.insert(id); // idempotent
        }
        let est = d.estimate();
        assert!((est - 100.0).abs() / 100.0 < 0.15, "estimate {est}");
        let mut big = DistinctEstimator::new();
        for id in 0..5000u64 {
            big.insert(id);
        }
        let est = big.estimate();
        assert!((est - 5000.0).abs() / 5000.0 < 0.15, "estimate {est}");
    }

    #[test]
    fn distinct_merge_is_union() {
        let mut a = DistinctEstimator::new();
        let mut b = DistinctEstimator::new();
        let mut whole = DistinctEstimator::new();
        for id in 0..300u64 {
            if id % 2 == 0 {
                a.insert(id);
            } else {
                b.insert(id);
            }
            whole.insert(id);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn top_k_keeps_worst_offenders_order_invariantly() {
        let offers = [(3u64, 1.5), (9, 9.0), (1, 4.0), (7, 9.0), (2, 0.5)];
        let mut forward = TopK::new(3);
        for (id, s) in offers {
            forward.offer(id, s);
        }
        let mut backward = TopK::new(3);
        for &(id, s) in offers.iter().rev() {
            backward.offer(id, s);
        }
        assert_eq!(forward.entries(), backward.entries());
        let kept: Vec<u64> = forward.entries().iter().map(|e| e.id).collect();
        // Tie at 9.0 resolves to the lower id first.
        assert_eq!(kept, vec![7, 9, 1]);
        forward.offer(5, f64::NAN);
        assert_eq!(forward.entries().len(), 3);
        let mut merged = TopK::new(3);
        merged.merge(&backward);
        assert_eq!(merged.entries(), forward.entries());
    }

    #[test]
    fn reservoir_is_seed_deterministic_and_bounded() {
        let run = |seed: u64| -> Vec<Sample> {
            let mut r = Reservoir::new(4, seed);
            (0..50).map(|_| r.offer()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same decisions");
        assert_ne!(run(7), run(8), "different seeds diverge");
        let decisions = run(7);
        for (i, d) in decisions.iter().take(4).enumerate() {
            assert_eq!(*d, Sample::Keep(i), "first k offers fill in order");
        }
        for d in &decisions {
            if let Sample::Keep(slot) = d {
                assert!(*slot < 4);
            }
        }
        let mut none = Reservoir::new(0, 1);
        assert_eq!(none.offer(), Sample::Skip);
    }
}
