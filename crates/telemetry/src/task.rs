//! Per-task telemetry buffers for parallel round execution.
//!
//! The federated round engine runs client work on a scoped thread pool,
//! but the [`Recorder`](crate::Recorder)'s span nesting rides on a
//! thread-local stack — worker threads cannot open spans under the main
//! thread's `round` root, and letting them emit directly would
//! interleave events nondeterministically. A [`TaskBuffer`] solves both
//! problems: each unit of client work records its spans and counters
//! into a private buffer, and the round barrier replays the buffers
//! into the recorder **in fixed participant order** via
//! [`Recorder::absorb_task`](crate::Recorder::absorb_task), prefixing
//! every span path with the main thread's currently-open path. The
//! resulting stream is identical whether the round ran on one thread or
//! eight.

use std::sync::Arc;

use crate::clock::Clock;

/// One buffered observation, replayed in order at the round barrier.
#[derive(Debug, Clone)]
pub(crate) enum TaskEntry {
    /// A completed span: leaf name, path *relative to the task root*,
    /// measured duration, and the worker thread's allocation activity
    /// while the span was open.
    Span {
        /// Span leaf name.
        name: &'static str,
        /// `;`-joined path relative to the buffer's own root.
        rel_path: String,
        /// Measured duration in microseconds.
        micros: u64,
        /// Allocations attributed to the span (worker thread-local).
        allocs: u64,
        /// Bytes allocated during the span (gross, worker thread-local).
        alloc_bytes: u64,
    },
    /// A buffered counter increment.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Increment to apply.
        delta: u64,
    },
}

/// An in-flight span on a [`TaskBuffer`]; close it with
/// [`TaskBuffer::end`]. Mirrors the recorder's RAII guard but without
/// borrowing the buffer, so workers can nest spans freely.
#[derive(Debug)]
#[must_use = "a task span must be closed with TaskBuffer::end"]
pub struct TaskSpan {
    name: &'static str,
    rel_path: String,
    depth: usize,
    start: u64,
    /// The worker thread's allocation counters at open (see
    /// [`crate::mem::thread_mark`]).
    mark: crate::mem::ThreadMark,
}

/// A private span/counter buffer for one unit of parallel work.
///
/// Created by [`Recorder::task_buffer`](crate::Recorder::task_buffer);
/// drained by [`Recorder::absorb_task`](crate::Recorder::absorb_task).
/// A buffer from a disabled recorder is inert: every call is a branch
/// and no clock reads happen, preserving the invariant that disabled
/// telemetry cannot perturb a run.
#[derive(Debug)]
pub struct TaskBuffer {
    enabled: bool,
    clock: Arc<dyn Clock>,
    /// Names of currently-open spans, outermost first.
    stack: Vec<&'static str>,
    entries: Vec<TaskEntry>,
}

impl TaskBuffer {
    pub(crate) fn new(enabled: bool, clock: Arc<dyn Clock>) -> Self {
        TaskBuffer {
            enabled,
            clock,
            stack: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// `true` when this buffer records observations.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span named `name` nested under any spans already open on
    /// this buffer.
    pub fn begin(&mut self, name: &'static str) -> TaskSpan {
        if !self.enabled {
            return TaskSpan {
                name,
                rel_path: String::new(),
                depth: 0,
                start: 0,
                mark: crate::mem::ThreadMark::default(),
            };
        }
        let mut rel_path = String::new();
        for seg in &self.stack {
            rel_path.push_str(seg);
            rel_path.push(crate::PATH_SEPARATOR);
        }
        rel_path.push_str(name);
        self.stack.push(name);
        TaskSpan {
            name,
            rel_path,
            depth: self.stack.len(),
            // Marked after the path build so the buffer's own
            // bookkeeping never charges the span.
            mark: crate::mem::thread_mark(),
            start: self.clock.now_micros(),
        }
    }

    /// Closes a span opened with [`TaskBuffer::begin`], recording its
    /// duration. Closing a parent before its children truncates the
    /// nesting stack, matching the recorder's self-healing behaviour.
    pub fn end(&mut self, span: TaskSpan) {
        if !self.enabled {
            return;
        }
        // Delta before the entry push below: the buffer's own growth
        // belongs to the enclosing span, not this one.
        let alloc = span.mark.delta();
        let micros = self.clock.now_micros().saturating_sub(span.start);
        if self.stack.len() >= span.depth {
            self.stack.truncate(span.depth - 1);
        }
        self.entries.push(TaskEntry::Span {
            name: span.name,
            rel_path: span.rel_path,
            micros,
            allocs: alloc.allocs,
            alloc_bytes: alloc.alloc_bytes,
        });
    }

    /// Buffers a counter increment, applied at the barrier in replay
    /// order. Zero deltas are dropped, matching the zero-suppression
    /// convention of the live counter paths.
    pub fn incr(&mut self, name: &'static str, delta: u64) {
        if !self.enabled || delta == 0 {
            return;
        }
        self.entries.push(TaskEntry::Counter { name, delta });
    }

    /// Drains the buffered entries (used by the recorder's absorb).
    pub(crate) fn drain(self) -> Vec<TaskEntry> {
        self.entries
    }
}
