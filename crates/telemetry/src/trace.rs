//! Round-anatomy execution tracing: per-task timelines, worker
//! utilization, and critical-path straggler attribution.
//!
//! Every unit of client work executed by the federated round engine
//! leaves one [`TaskTrace`] behind: *measured* thread timing (which
//! worker ran it, how long it waited in the queue, how long it
//! executed — all through the recorder's injectable clock) joined with
//! *simulated* AIoT durations (device compute seconds from
//! `cost::DeviceProfile`, uplink airtime from `cost::LteLink`). The two
//! halves have very different determinism contracts:
//!
//! * **Simulated durations** are pure functions of the round's sampled
//!   participants and the transport's update size — byte-identical at
//!   every thread count and with telemetry disabled. The per-round
//!   critical-path summary ([`summarize_round`]) is derived from them
//!   and is part of `RoundMetrics` equality.
//! * **Measured timings** depend on how workers interleave their clock
//!   reads, exactly like span durations. Comparisons across thread
//!   counts must canonicalize them first ([`TaskTrace::canonical`]);
//!   with a disabled recorder they are all zero.
//!
//! Traces accumulate in a bounded [`TraceRing`] on the recorder and are
//! simultaneously emitted as `trace.task` events, so a recorded
//! `--telemetry` JSONL stream replays into the exact same timeline
//! ([`TaskTrace::from_event_fields`]). [`chrome_trace`] renders any
//! slice of traces as Chrome trace-event JSON (Perfetto-loadable) with
//! two process lanes: measured worker threads and the simulated device
//! fleet.

use std::collections::VecDeque;

use crate::event::write_json_string;
use crate::jsonl::Value;

/// Default bound on the recorder's trace ring: at 4 tasks a round this
/// is thousands of rounds of history, yet only a few MiB resident.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Measured thread timing of one task, in recorder-clock microseconds.
///
/// All three stamps come from the same injectable clock as spans. With
/// a disabled recorder every field is zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskTiming {
    /// Index of the pool worker that executed the task (0 on the
    /// serial path).
    pub worker: u64,
    /// Clock stamp when the task was enqueued on the pool.
    pub enqueue_micros: u64,
    /// Clock stamp when a worker began executing the task.
    pub start_micros: u64,
    /// Clock stamp when the worker finished the task.
    pub end_micros: u64,
}

impl TaskTiming {
    /// Time spent waiting in the queue before a worker picked the task
    /// up.
    #[must_use]
    pub fn queue_micros(&self) -> u64 {
        self.start_micros.saturating_sub(self.enqueue_micros)
    }

    /// Time spent executing on the worker.
    #[must_use]
    pub fn exec_micros(&self) -> u64 {
        self.end_micros.saturating_sub(self.start_micros)
    }
}

/// One traced unit of client work: measured thread timing joined with
/// the simulated AIoT cost of the same work.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTrace {
    /// Round index the task belongs to.
    pub round: u64,
    /// Client identity (index into the federation's client list).
    pub client: u64,
    /// Engine tag (`"fedhd"` or `"fedavg"`).
    pub engine: String,
    /// Whether the client's update arrived at the aggregator (false
    /// for stragglers).
    pub arrived: bool,
    /// Measured worker timing (canonicalized away in cross-thread
    /// comparisons).
    pub timing: TaskTiming,
    /// Simulated on-device compute time (from `cost::DeviceProfile`).
    pub sim_compute_micros: u64,
    /// Simulated uplink airtime for the client's update (from
    /// `cost::LteLink`); spent only when the update arrives.
    pub sim_uplink_micros: u64,
}

impl TaskTrace {
    /// The trace with its scheduling-dependent measured half zeroed:
    /// the canonical form compared across thread counts, mirroring the
    /// determinism suite's span exclusion.
    #[must_use]
    pub fn canonical(&self) -> TaskTrace {
        TaskTrace {
            timing: TaskTiming::default(),
            ..self.clone()
        }
    }

    /// The simulated end-to-end cost this client imposes on the round
    /// barrier: compute always, airtime only when the update arrives.
    #[must_use]
    pub fn sim_cost_micros(&self) -> u64 {
        self.sim_compute_micros
            + if self.arrived {
                self.sim_uplink_micros
            } else {
                0
            }
    }

    /// Reconstructs a trace from the `fields` object of a recorded
    /// `trace.task` event (see `Recorder::record_task_trace`). Returns
    /// `None` when required fields are missing or mistyped, so foreign
    /// events are skipped rather than misread.
    #[must_use]
    pub fn from_event_fields(fields: &Value) -> Option<TaskTrace> {
        let get_u64 = |key: &str| -> Option<u64> { Some(fields.get(key)?.as_f64()? as u64) };
        Some(TaskTrace {
            round: get_u64("round")?,
            client: get_u64("client")?,
            engine: fields.get("engine")?.as_str()?.to_string(),
            arrived: get_u64("arrived")? != 0,
            timing: TaskTiming {
                worker: get_u64("worker")?,
                enqueue_micros: get_u64("enqueue_micros")?,
                start_micros: get_u64("start_micros")?,
                end_micros: get_u64("end_micros")?,
            },
            sim_compute_micros: get_u64("sim_compute_micros")?,
            sim_uplink_micros: get_u64("sim_uplink_micros")?,
        })
    }
}

/// A bounded FIFO of task traces. When full, pushing evicts the oldest
/// trace; the recorder counts evictions on `trace.dropped` so silent
/// loss is visible.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    buf: VecDeque<TaskTrace>,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `cap` traces (`cap == 0` keeps nothing
    /// and counts every push as dropped).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends a trace, evicting the oldest when the ring is full.
    /// Returns `true` when an eviction (or a zero-capacity drop)
    /// happened.
    pub fn push(&mut self, trace: TaskTrace) -> bool {
        if self.cap == 0 {
            self.dropped += 1;
            return true;
        }
        let evicted = self.buf.len() == self.cap;
        if evicted {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(trace);
        evicted
    }

    /// Number of traces evicted since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of traces currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when the ring holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained traces, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TaskTrace> {
        self.buf.iter().cloned().collect()
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(DEFAULT_CAPACITY)
    }
}

/// Per-round analysis derived from a round's task traces: measured
/// pool health plus the simulated critical path through the barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTraceSummary {
    /// Round index.
    pub round: u64,
    /// Engine tag of the traced round.
    pub engine: String,
    /// Number of traced tasks (sampled participants).
    pub tasks: u64,
    /// Distinct workers that executed tasks (0 when nothing was
    /// measured, i.e. telemetry disabled).
    pub workers: u64,
    /// Fraction of total worker capacity spent executing: Σ exec /
    /// (workers × busy-span). 0 when nothing was measured.
    pub worker_utilization: f64,
    /// Peak number of tasks enqueued but not yet started.
    pub queue_depth_max: u64,
    /// The client whose simulated cost bounds the barrier (first in
    /// participant order on ties; 0 when the round had no tasks).
    pub critical_client: u64,
    /// The critical client's simulated cost (compute + airtime if its
    /// update arrived).
    pub sim_critical_micros: u64,
    /// Simulated wall time of the whole round: slowest device compute,
    /// then every arriving update serialized over the shared LTE link
    /// (TDM), matching `timeline::CampaignTimeline`.
    pub sim_round_micros: u64,
}

/// Analyzes the traces of one round. The simulated half (critical path,
/// round time) is deterministic at any thread count and with telemetry
/// disabled; the measured half (workers, utilization, queue depth) is
/// zero when the traces carry no measured timing.
#[must_use]
pub fn summarize_round(rows: &[TaskTrace]) -> RoundTraceSummary {
    let (round, engine) = rows
        .first()
        .map(|r| (r.round, r.engine.clone()))
        .unwrap_or((0, String::new()));

    // Simulated critical path: ties resolve to the first participant.
    let mut critical_client = 0u64;
    let mut sim_critical_micros = 0u64;
    let mut max_compute = 0u64;
    let mut uplink_total = 0u64;
    for (i, row) in rows.iter().enumerate() {
        let cost = row.sim_cost_micros();
        if i == 0 || cost > sim_critical_micros {
            critical_client = row.client;
            sim_critical_micros = cost;
        }
        max_compute = max_compute.max(row.sim_compute_micros);
        if row.arrived {
            uplink_total += row.sim_uplink_micros;
        }
    }
    let sim_round_micros = if rows.is_empty() {
        0
    } else {
        max_compute + uplink_total
    };

    // Measured pool health, zero when nothing was measured.
    let measured = rows.iter().any(|r| r.timing.end_micros > 0);
    let (workers, worker_utilization, queue_depth_max) = if measured {
        let mut workers: Vec<u64> = rows.iter().map(|r| r.timing.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        let span_start = rows
            .iter()
            .map(|r| r.timing.enqueue_micros)
            .min()
            .unwrap_or(0);
        let span_end = rows.iter().map(|r| r.timing.end_micros).max().unwrap_or(0);
        let span = span_end.saturating_sub(span_start);
        let exec_total: u64 = rows.iter().map(|r| r.timing.exec_micros()).sum();
        let utilization = if span == 0 {
            0.0
        } else {
            exec_total as f64 / (workers.len() as u64 * span) as f64
        };
        // Queue-depth sweep: +1 at enqueue, -1 at start; the -1 sorts
        // first at equal stamps so an instant handoff never counts.
        let mut edges: Vec<(u64, i64)> = Vec::with_capacity(rows.len() * 2);
        for r in rows {
            edges.push((r.timing.enqueue_micros, 1));
            edges.push((r.timing.start_micros, -1));
        }
        edges.sort_unstable();
        let (mut depth, mut peak) = (0i64, 0i64);
        for (_, d) in edges {
            depth += d;
            peak = peak.max(depth);
        }
        (workers.len() as u64, utilization, peak.max(0) as u64)
    } else {
        (0, 0.0, 0)
    };

    RoundTraceSummary {
        round,
        engine,
        tasks: rows.len() as u64,
        workers,
        worker_utilization,
        queue_depth_max,
        critical_client,
        sim_critical_micros,
        sim_round_micros,
    }
}

/// Splits a trace slice into consecutive `(engine, round)` groups and
/// summarizes each — the shape `fhdnn trace` renders as its per-round
/// table.
#[must_use]
pub fn summarize(rows: &[TaskTrace]) -> Vec<RoundTraceSummary> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=rows.len() {
        let boundary = i == rows.len()
            || rows[i].round != rows[start].round
            || rows[i].engine != rows[start].engine;
        if boundary {
            out.push(summarize_round(&rows[start..i]));
            start = i;
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn push_slice(
    out: &mut String,
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts: u64,
    dur: u64,
    args: &[(&str, u64)],
) {
    out.push_str("{\"ph\":\"X\",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"ts\":");
    out.push_str(&ts.to_string());
    out.push_str(",\"dur\":");
    out.push_str(&dur.to_string());
    out.push_str(",\"name\":");
    write_json_string(out, name);
    out.push_str(",\"cat\":");
    write_json_string(out, cat);
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, k);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("}}");
}

fn push_metadata(out: &mut String, meta_name: &str, pid: u64, tid: u64, value: &str) {
    out.push_str("{\"ph\":\"M\",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"name\":");
    write_json_string(out, meta_name);
    out.push_str(",\"args\":{\"name\":");
    write_json_string(out, value);
    out.push_str("}}");
}

/// Process id of the measured lane (worker threads) in the exported
/// Chrome trace.
pub const MEASURED_PID: u64 = 1;
/// Process id of the simulated lane (AIoT device fleet) in the
/// exported Chrome trace.
pub const SIMULATED_PID: u64 = 2;

/// Renders traces as Chrome trace-event JSON (`chrome://tracing` /
/// Perfetto `Open trace file`).
///
/// Two process lanes: pid 1 holds the *measured* timeline (one thread
/// row per pool worker, slices stamped with the recorder clock), pid 2
/// holds the *simulated* timeline (one thread row per client; device
/// compute slices start at the round's simulated origin, arriving
/// uplinks are serialized over the shared link after the slowest
/// compute, and the origin advances by the round's simulated duration
/// so a campaign reads left-to-right). Straggler compute slices carry a
/// `straggler` category. The output is a pure function of the input
/// slice — byte-identical whenever the traces are.
#[must_use]
pub fn chrome_trace(rows: &[TaskTrace]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut events: Vec<String> = Vec::new();

    // Lane metadata: process names plus one thread row per distinct
    // worker / client, sorted for stable output.
    let mut buf = String::new();
    push_metadata(
        &mut buf,
        "process_name",
        MEASURED_PID,
        0,
        "measured: pool workers",
    );
    events.push(std::mem::take(&mut buf));
    let mut workers: Vec<u64> = rows.iter().map(|r| r.timing.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for w in &workers {
        push_metadata(
            &mut buf,
            "thread_name",
            MEASURED_PID,
            *w,
            &format!("worker {w}"),
        );
        events.push(std::mem::take(&mut buf));
    }
    push_metadata(
        &mut buf,
        "process_name",
        SIMULATED_PID,
        0,
        "simulated: AIoT devices",
    );
    events.push(std::mem::take(&mut buf));
    let mut clients: Vec<u64> = rows.iter().map(|r| r.client).collect();
    clients.sort_unstable();
    clients.dedup();
    for c in &clients {
        push_metadata(
            &mut buf,
            "thread_name",
            SIMULATED_PID,
            *c,
            &format!("client {c}"),
        );
        events.push(std::mem::take(&mut buf));
    }

    // Measured lane: one slice per task on its worker's row.
    for r in rows {
        push_slice(
            &mut buf,
            &format!("r{} c{}", r.round, r.client),
            &r.engine,
            MEASURED_PID,
            r.timing.worker,
            r.timing.start_micros,
            r.timing.exec_micros(),
            &[
                ("round", r.round),
                ("client", r.client),
                ("queue_micros", r.timing.queue_micros()),
            ],
        );
        events.push(std::mem::take(&mut buf));
    }

    // Simulated lane: compute at the round origin, arriving uplinks
    // TDM-serialized after the slowest compute (the same model as
    // `timeline::CampaignTimeline`), origin advancing per round group.
    let mut origin = 0u64;
    let mut start = 0usize;
    for i in 1..=rows.len() {
        let boundary = i == rows.len()
            || rows[i].round != rows[start].round
            || rows[i].engine != rows[start].engine;
        if !boundary {
            continue;
        }
        let group = &rows[start..i];
        let max_compute = group
            .iter()
            .map(|r| r.sim_compute_micros)
            .max()
            .unwrap_or(0);
        for r in group {
            let cat = if r.arrived {
                format!("{},compute", r.engine)
            } else {
                format!("{},compute,straggler", r.engine)
            };
            push_slice(
                &mut buf,
                &format!("r{} compute", r.round),
                &cat,
                SIMULATED_PID,
                r.client,
                origin,
                r.sim_compute_micros,
                &[("round", r.round), ("client", r.client)],
            );
            events.push(std::mem::take(&mut buf));
        }
        let mut cursor = origin + max_compute;
        let mut uplink_total = 0u64;
        for r in group {
            if !r.arrived {
                continue;
            }
            push_slice(
                &mut buf,
                &format!("r{} uplink", r.round),
                &format!("{},uplink", r.engine),
                SIMULATED_PID,
                r.client,
                cursor,
                r.sim_uplink_micros,
                &[("round", r.round), ("client", r.client)],
            );
            events.push(std::mem::take(&mut buf));
            cursor += r.sim_uplink_micros;
            uplink_total += r.sim_uplink_micros;
        }
        origin += max_compute + uplink_total;
        start = i;
    }

    for e in events {
        if !first {
            out.push_str(",\n");
        }
        out.push_str(&e);
        first = false;
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl;

    fn row(round: u64, client: u64, arrived: bool, compute: u64, uplink: u64) -> TaskTrace {
        TaskTrace {
            round,
            client,
            engine: "fedhd".into(),
            arrived,
            timing: TaskTiming::default(),
            sim_compute_micros: compute,
            sim_uplink_micros: uplink,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = TraceRing::new(2);
        assert!(!ring.push(row(0, 0, true, 1, 1)));
        assert!(!ring.push(row(0, 1, true, 1, 1)));
        assert!(ring.push(row(0, 2, true, 1, 1)));
        assert_eq!(ring.dropped(), 1);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].client, 1);
        assert_eq!(snap[1].client, 2);

        let mut empty = TraceRing::new(0);
        assert!(empty.push(row(0, 0, true, 1, 1)));
        assert!(empty.is_empty());
        assert_eq!(empty.dropped(), 1);
    }

    #[test]
    fn critical_path_on_known_durations() {
        // Client 7 has the largest compute+uplink; client 3 computes
        // longest but straggles, so only its compute counts.
        let rows = vec![
            row(4, 1, true, 100, 50),  // cost 150
            row(4, 7, true, 120, 90),  // cost 210 — critical
            row(4, 3, false, 180, 70), // straggler: cost 180
        ];
        let s = summarize_round(&rows);
        assert_eq!(s.round, 4);
        assert_eq!(s.engine, "fedhd");
        assert_eq!(s.tasks, 3);
        assert_eq!(s.critical_client, 7);
        assert_eq!(s.sim_critical_micros, 210);
        // Slowest compute (180) + arriving uplinks (50 + 90).
        assert_eq!(s.sim_round_micros, 320);
        // Nothing measured: pool stats are zero.
        assert_eq!(s.workers, 0);
        assert_eq!(s.worker_utilization, 0.0);
        assert_eq!(s.queue_depth_max, 0);
    }

    #[test]
    fn critical_path_tie_resolves_to_first_participant() {
        let rows = vec![row(0, 9, true, 100, 0), row(0, 2, true, 100, 0)];
        assert_eq!(summarize_round(&rows).critical_client, 9);
    }

    #[test]
    fn measured_pool_stats_from_hand_built_timings() {
        let mut rows = vec![row(0, 0, true, 1, 1), row(0, 1, true, 1, 1)];
        // Two tasks enqueued at t=0, run back to back on one worker:
        // utilization (10+10)/(1*30), queue peaks at 2 before the first
        // start (enqueue +1, +1, then starts).
        rows[0].timing = TaskTiming {
            worker: 0,
            enqueue_micros: 0,
            start_micros: 5,
            end_micros: 15,
        };
        rows[1].timing = TaskTiming {
            worker: 0,
            enqueue_micros: 0,
            start_micros: 20,
            end_micros: 30,
        };
        let s = summarize_round(&rows);
        assert_eq!(s.workers, 1);
        assert!((s.worker_utilization - 20.0 / 30.0).abs() < 1e-12);
        assert_eq!(s.queue_depth_max, 2);
        assert_eq!(rows[0].timing.queue_micros(), 5);
        assert_eq!(rows[0].timing.exec_micros(), 10);
    }

    #[test]
    fn summarize_groups_consecutive_rounds_and_engines() {
        let mut rows = vec![
            row(0, 0, true, 10, 5),
            row(0, 1, true, 10, 5),
            row(1, 0, true, 10, 5),
        ];
        rows.push(TaskTrace {
            engine: "fedavg".into(),
            ..row(1, 2, true, 10, 5)
        });
        let groups = summarize(&rows);
        assert_eq!(groups.len(), 3);
        assert_eq!((groups[0].round, groups[0].tasks), (0, 2));
        assert_eq!((groups[1].round, groups[1].tasks), (1, 1));
        assert_eq!(groups[2].engine, "fedavg");
        assert!(summarize(&[]).is_empty());
    }

    #[test]
    fn canonical_zeroes_only_the_measured_half() {
        let mut r = row(2, 5, false, 33, 44);
        r.timing = TaskTiming {
            worker: 3,
            enqueue_micros: 10,
            start_micros: 20,
            end_micros: 40,
        };
        let c = r.canonical();
        assert_eq!(c.timing, TaskTiming::default());
        assert_eq!(
            (
                c.round,
                c.client,
                c.arrived,
                c.sim_compute_micros,
                c.sim_uplink_micros
            ),
            (2, 5, false, 33, 44)
        );
    }

    #[test]
    fn event_fields_round_trip() {
        let text = r#"{"ts":1,"kind":"event","name":"trace.task","fields":{"arrived":1,"client":3,"end_micros":40,"engine":"fedavg","enqueue_micros":10,"round":2,"sim_compute_micros":7,"sim_uplink_micros":9,"start_micros":20,"worker":1}}"#;
        let v = jsonl::parse(text).unwrap();
        let t = TaskTrace::from_event_fields(v.get("fields").unwrap()).unwrap();
        assert_eq!(t.round, 2);
        assert_eq!(t.client, 3);
        assert_eq!(t.engine, "fedavg");
        assert!(t.arrived);
        assert_eq!(t.timing.worker, 1);
        assert_eq!(t.timing.enqueue_micros, 10);
        assert_eq!(t.timing.start_micros, 20);
        assert_eq!(t.timing.end_micros, 40);
        assert_eq!(t.sim_compute_micros, 7);
        assert_eq!(t.sim_uplink_micros, 9);

        // Foreign/partial field objects are skipped, not misread.
        let partial = jsonl::parse(r#"{"round":1}"#).unwrap();
        assert!(TaskTrace::from_event_fields(&partial).is_none());
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_pure() {
        let mut rows = vec![
            row(0, 1, true, 100, 50),
            row(0, 3, false, 200, 50),
            row(1, 1, true, 100, 50),
        ];
        rows[0].timing = TaskTiming {
            worker: 0,
            enqueue_micros: 0,
            start_micros: 5,
            end_micros: 15,
        };
        let json = chrome_trace(&rows);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        // Both lanes announce themselves, stragglers are tagged, and
        // the second round's simulated slices start after the first
        // round's duration (200 compute + 50 uplink = 250).
        assert!(json.contains("measured: pool workers"));
        assert!(json.contains("simulated: AIoT devices"));
        assert!(json.contains("straggler"));
        assert!(json.contains("\"ts\":250,\"dur\":100"));
        assert_eq!(json, chrome_trace(&rows), "export must be pure");
        // Parses with the in-tree JSON parser (single-line form).
        let one_line = json.replace('\n', "");
        let v = jsonl::parse(&one_line).unwrap();
        let events = v.get("traceEvents").unwrap();
        match events {
            Value::Arr(items) => assert!(items.len() > rows.len()),
            _ => panic!("traceEvents must be an array"),
        }
    }

    #[test]
    fn chrome_trace_of_empty_rows_is_still_loadable() {
        let json = chrome_trace(&[]);
        let v = jsonl::parse(&json.replace('\n', "")).unwrap();
        match v.get("traceEvents").unwrap() {
            Value::Arr(items) => assert_eq!(items.len(), 2, "two process_name records"),
            _ => panic!("traceEvents must be an array"),
        }
    }
}
