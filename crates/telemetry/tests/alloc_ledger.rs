//! Allocator-ledger consistency under concurrent churn.
//!
//! The tracked allocator books every alloc/realloc/dealloc with relaxed
//! atomics and promises a simple ledger identity at quiescent points:
//! `live_bytes == alloc_bytes − freed_bytes`. This test hammers the
//! allocator from 8 threads — interleaved Vec growth, reallocation,
//! boxed values, string building — joins them all, and then checks the
//! books balance. Thread count matches the `FHDNN_TEST_THREADS=8`
//! setting the TSan CI leg runs the suite under, so the same churn
//! doubles as the data-race workload there.
//!
//! This file holds exactly one test on purpose: with every worker
//! joined and no sibling tests running, the process is quiescent at
//! the closing snapshot, which is the only state in which the ledger
//! identity is defined (mid-flight, a thread may have bumped
//! `alloc_bytes` but not yet `live_bytes`).

use fhdnn_telemetry::mem;

const THREADS: usize = 8;
const ROUNDS: usize = 200;

fn churn(seed: usize) {
    let mut keep: Vec<Vec<u8>> = Vec::new();
    for i in 0..ROUNDS {
        // Growing vector: triggers the realloc path repeatedly.
        let mut v: Vec<u8> = Vec::new();
        for b in 0..(seed % 7 + 1) * 64 {
            v.push(b as u8);
        }
        // Boxed value and a formatted string: small odd-size allocs.
        let boxed = Box::new([i as u64; 9]);
        let s = format!("thread-{seed}-round-{i}-{:?}", &boxed[..2]);
        // Retain a rotating subset so frees interleave with allocs
        // instead of pairing up LIFO.
        if i % 3 == 0 {
            keep.push(v);
        }
        if keep.len() > 16 {
            keep.remove(0);
        }
        drop(s);
    }
    drop(keep);
}

#[test]
#[cfg_attr(miri, ignore = "tracked allocator is not installed under Miri")]
fn ledger_balances_after_concurrent_churn() {
    let before = mem::stats();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || churn(t + 1));
        }
    });
    let after = mem::stats();

    // All 8 workers are joined: their traffic is fully booked, and the
    // gross counters only ever grow.
    assert!(after.allocs > before.allocs, "churn allocated");
    assert!(after.deallocs > before.deallocs, "churn freed");
    assert!(
        after.allocs >= after.deallocs,
        "every dealloc matches a prior alloc ({} allocs, {} deallocs)",
        after.allocs,
        after.deallocs
    );

    // Ledger identity at quiescence: everything ever allocated is
    // either still live or booked as freed. This holds from process
    // start because every record_alloc/record_dealloc pair touches
    // both sides of the ledger.
    assert_eq!(
        after.live_bytes,
        after.alloc_bytes - after.freed_bytes,
        "live must equal gross allocated minus gross freed at quiescence"
    );

    // The peak watermark can never sit below the live level it tracks.
    assert!(
        after.peak_bytes >= after.live_bytes,
        "peak {} >= live {}",
        after.peak_bytes,
        after.live_bytes
    );
}
