use std::fmt;

/// Errors produced by tensor operations.
///
/// Every fallible operation in this crate returns a `TensorError` describing
/// the exact shape or argument mismatch, so callers can surface actionable
/// diagnostics instead of panicking deep inside numeric code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// An operation required a tensor of a specific rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
    },
    /// Inner dimensions incompatible for matrix multiplication.
    MatmulDimMismatch {
        /// `[m, k]` of the left matrix.
        lhs: [usize; 2],
        /// `[k2, n]` of the right matrix.
        rhs: [usize; 2],
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A scalar argument was invalid (e.g. zero or negative where a positive
    /// value is required).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            TensorError::MatmulDimMismatch { lhs, rhs } => write!(
                f,
                "matmul inner dimensions incompatible: [{}, {}] x [{}, {}]",
                lhs[0], lhs[1], rhs[0], rhs[1]
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "data length 3 does not match shape volume 4");
    }

    #[test]
    fn display_matmul_mismatch() {
        let e = TensorError::MatmulDimMismatch {
            lhs: [2, 3],
            rhs: [4, 5],
        };
        assert!(e.to_string().contains("[2, 3] x [4, 5]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
