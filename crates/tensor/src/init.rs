//! Weight initialization schemes for neural-network layers.
//!
//! These are free functions rather than `Tensor` constructors because each
//! scheme interprets the shape with layer-specific semantics (fan-in /
//! fan-out), which a generic tensor should not know about.

use rand::Rng;

use crate::Tensor;

/// Kaiming-He normal initialization for ReLU networks.
///
/// Draws from `N(0, sqrt(2 / fan_in)^2)`. For a conv weight
/// `[out_c, in_c, kh, kw]`, `fan_in = in_c * kh * kw`; for a linear weight
/// `[out, in]`, `fan_in = in`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_normal<R: Rng + ?Sized>(dims: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(dims, std, rng)
}

/// Xavier-Glorot uniform initialization.
///
/// Draws from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan sum must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// Rows drawn uniformly from the unit sphere in `R^n` — the random
/// projection matrix `Φ ∈ R^{d×n}` of the paper's HD encoder (Section 3.3),
/// whose rows are "randomly sampled directions from the n-dimensional unit
/// sphere".
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn unit_sphere_rows<R: Rng + ?Sized>(d: usize, n: usize, rng: &mut R) -> Tensor {
    assert!(n > 0, "row dimension must be positive");
    let mut t = Tensor::randn(&[d, n], 1.0, rng);
    for i in 0..d {
        let row = t.row_mut(i).expect("shape is [d, n]");
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        // A zero-norm Gaussian draw has probability zero; guard against the
        // pathological case anyway by re-pointing at a basis direction.
        if norm > 0.0 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        } else {
            row[0] = 1.0;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_std_matches_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = kaiming_normal(&[100, 200], 200, &mut rng);
        let var = t.as_slice().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        let expect = 2.0 / 200.0;
        assert!((var - expect).abs() < expect * 0.2, "var {var} vs {expect}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = xavier_uniform(&[50, 60], 60, 50, &mut rng);
        let a = (6.0 / 110.0f32).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn unit_sphere_rows_are_normalized() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = unit_sphere_rows(64, 32, &mut rng);
        for i in 0..64 {
            let norm = t.row(i).unwrap().iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "row {i} norm {norm}");
        }
    }

    #[test]
    fn unit_sphere_rows_decorrelated() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = unit_sphere_rows(2, 1024, &mut rng);
        let dot: f32 = t
            .row(0)
            .unwrap()
            .iter()
            .zip(t.row(1).unwrap())
            .map(|(a, b)| a * b)
            .sum();
        assert!(dot.abs() < 0.15, "rows nearly orthogonal, dot {dot}");
    }
}
