//! # fhdnn-tensor
//!
//! A small, dependency-light dense tensor library used as the numeric
//! substrate for the FHDnn reproduction (DAC 2022).
//!
//! The library provides a row-major, contiguous, `f32` [`Tensor`] with the
//! operations needed to build and train convolutional neural networks from
//! scratch (the federated-learning CNN baseline) and to implement
//! hyperdimensional random-projection encoders:
//!
//! - construction and initialization ([`Tensor::zeros`], [`Tensor::randn`],
//!   Kaiming/Xavier schemes in [`init`]),
//! - elementwise arithmetic and mapping ([`ops`]),
//! - matrix multiplication and related linear algebra ([`linalg`]),
//! - reductions and argmax ([`reduce`]).
//!
//! # Example
//!
//! ```
//! use fhdnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), fhdnn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod init;
pub mod linalg;
pub mod ops;
pub mod reduce;
mod shape;
mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
