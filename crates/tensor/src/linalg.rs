//! Matrix multiplication and related rank-2 linear algebra.
//!
//! The matmul kernel is a cache-friendly `i-k-j` triple loop — deliberately
//! simple, `forbid(unsafe)`, and fast enough for the laptop-scale CNNs and
//! random-projection encoders this reproduction trains.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn as_matrix(&self) -> Result<(usize, usize)> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        Ok((self.dims()[0], self.dims()[1]))
    }

    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns an error if either operand is not rank 2 or the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = self.as_matrix()?;
        let (k2, n) = other.as_matrix()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs: [m, k],
                rhs: [k2, n],
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self^T * other` without materializing the transpose:
    /// `[k, m]^T x [k, n] -> [m, n]`.
    ///
    /// Used by linear-layer weight gradients (`x^T · dy`).
    ///
    /// # Errors
    ///
    /// Returns an error on rank or dimension mismatch.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = self.as_matrix()?;
        let (k2, n) = other.as_matrix()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs: [m, k],
                rhs: [k2, n],
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_pi * b_pj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self * other^T`: `[m, k] x [n, k]^T -> [m, n]`.
    ///
    /// Used by linear-layer input gradients (`dy · W`) when the weight is
    /// stored `[out, in]`, and by HD similarity against a prototype matrix.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or dimension mismatch.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = self.as_matrix()?;
        let (n, k2) = other.as_matrix()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs: [m, k],
                rhs: [k2, n],
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                out[i * n + j] = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `[m, n] x [n] -> [m]`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, n) = self.as_matrix()?;
        if v.shape().rank() != 1 || v.len() != n {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: v.dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let out = (0..m)
            .map(|i| {
                a[i * n..(i + 1) * n]
                    .iter()
                    .zip(x)
                    .map(|(p, q)| p * q)
                    .sum()
            })
            .collect();
        Tensor::from_vec(out, &[m])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        let (m, n) = self.as_matrix()?;
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Outer product of two rank-1 tensors: `[m] x [n] -> [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns an error if either input is not rank 1.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 1 || other.shape().rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: self.shape().rank().max(other.shape().rank()),
            });
        }
        let (m, n) = (self.len(), other.len());
        let mut out = Vec::with_capacity(m * n);
        for &a in self.as_slice() {
            for &b in other.as_slice() {
                out.push(a * b);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c]).unwrap()
    }

    #[test]
    fn matmul_known_values() {
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = m(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = m(&[0.0; 6], 2, 3);
        let b = m(&[0.0; 6], 2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let b = m(&[1.0, 0.0, -1.0, 2.0, 0.5, 1.0], 3, 2);
        let expect = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(a.matmul_tn(&b).unwrap(), expect);
    }

    #[test]
    fn matmul_nt_equals_matmul_transpose() {
        let a = m(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = m(&[5.0, 6.0, 7.0, 8.0], 2, 2);
        let expect = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(a.matmul_nt(&b).unwrap(), expect);
    }

    #[test]
    fn matvec_known_values() {
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let v = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]).unwrap();
        let out = a.matvec(&v).unwrap();
        assert_eq!(out.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn outer_product() {
        let u = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = u.outer(&v).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }
}
