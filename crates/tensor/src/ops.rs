//! Elementwise arithmetic, mapping, and scalar operations.
//!
//! All binary operations require operands of identical shape; there is no
//! implicit broadcasting except for the explicit row-broadcast helpers used
//! by linear layers ([`Tensor::add_row_broadcast`]).

use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Elementwise sum: `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference: `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a / b)
    }

    /// In-place elementwise accumulation: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place elementwise subtraction: `self -= other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
        Ok(())
    }

    /// In-place scaled accumulation: `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scalar product: `self * s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place scalar product.
    pub fn scale_assign(&mut self, s: f32) {
        for x in self.as_mut_slice() {
            *x *= s;
        }
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.as_slice().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(data, self.dims()).expect("map preserves volume")
    }

    /// Applies `f` to every element in place.
    pub fn map_assign<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Adds a `[cols]` row vector to every row of a `[rows, cols]` matrix.
    ///
    /// This is the bias-add used by dense layers.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or width mismatch.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        if row.shape().rank() != 1 || row.len() != self.dims()[1] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: row.dims().to_vec(),
            });
        }
        let cols = self.dims()[1];
        let mut out = self.clone();
        for (i, x) in out.as_mut_slice().iter_mut().enumerate() {
            *x += row.as_slice()[i % cols];
        }
        Ok(out)
    }

    /// Elementwise sign function used by HD bipolar encodings: `+1` when
    /// `x >= 0`, `-1` otherwise (matching the paper's convention that
    /// `sign(0) = +1`).
    pub fn sign_pm1(&self) -> Tensor {
        self.map(|x| if x >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Dot product over all elements (both tensors flattened).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other)?;
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Cosine similarity between two tensors (flattened).
    ///
    /// Returns `0.0` when either vector has zero norm.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn cosine_similarity(&self, other: &Tensor) -> Result<f32> {
        let dot = self.dot(other)?;
        let denom = self.norm() * other.norm();
        Ok(if denom == 0.0 { 0.0 } else { dot / denom })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[3.0, 4.0])).unwrap();
        assert_eq!(a.as_slice(), &[7.0, 9.0]);
    }

    #[test]
    fn sign_pm1_zero_maps_to_plus_one() {
        let s = t(&[-0.5, 0.0, 2.0]).sign_pm1();
        assert_eq!(s.as_slice(), &[-1.0, 1.0, 1.0]);
    }

    #[test]
    fn norms() {
        let a = t(&[3.0, 4.0]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = t(&[1.0, 0.0]);
        let b = t(&[0.0, 1.0]);
        assert_eq!(a.cosine_similarity(&b).unwrap(), 0.0);
        assert!((a.cosine_similarity(&a).unwrap() - 1.0).abs() < 1e-6);
        let z = t(&[0.0, 0.0]);
        assert_eq!(a.cosine_similarity(&z).unwrap(), 0.0);
    }

    #[test]
    fn row_broadcast_bias_add() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = t(&[10.0, 20.0]);
        let out = m.add_row_broadcast(&b).unwrap();
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        assert!(m.add_row_broadcast(&t(&[1.0, 2.0, 3.0])).is_err());
    }

    #[test]
    fn scale_and_map() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.scale(3.0).as_slice(), &[3.0, -6.0]);
        assert_eq!(a.abs().as_slice(), &[1.0, 2.0]);
        let mut b = a.clone();
        b.map_assign(|x| x + 1.0);
        assert_eq!(b.as_slice(), &[2.0, -1.0]);
    }
}
