//! Reductions: sums, means, extrema, and argmax.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; `0.0` for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element; `None` for empty tensors.
    pub fn max(&self) -> Option<f32> {
        self.as_slice().iter().copied().reduce(f32::max)
    }

    /// Minimum element; `None` for empty tensors.
    pub fn min(&self) -> Option<f32> {
        self.as_slice().iter().copied().reduce(f32::min)
    }

    /// Index of the maximum element (first occurrence); `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &x) in self.as_slice().iter().enumerate() {
            match best {
                Some((_, b)) if x <= b => {}
                _ => best = Some((i, x)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Per-row argmax of a rank-2 tensor — the predicted class of each
    /// sample in a `[batch, classes]` score matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if cols == 0 {
            return Err(TensorError::InvalidArgument(
                "argmax over zero columns".into(),
            ));
        }
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = self.row(r)?;
            let mut best = 0;
            for (j, &x) in row.iter().enumerate() {
                if x > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Column-wise sum of a rank-2 tensor: `[rows, cols] -> [cols]`.
    ///
    /// This is the bias-gradient reduction for dense layers.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)?) {
                *o += x;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Mean squared error between two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f32> {
        let diff = self.sub(other)?;
        Ok(diff.norm_sq() / diff.len().max(1) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(t.mean(), 0.0);
        assert!(t.max().is_none());
        assert!(t.argmax().is_none());
    }

    #[test]
    fn max_min_argmax() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 7.0, 7.0], &[4]).unwrap();
        assert_eq!(t.max(), Some(7.0));
        assert_eq!(t.min(), Some(-1.0));
        assert_eq!(t.argmax(), Some(2), "first occurrence wins");
    }

    #[test]
    fn argmax_rows_per_sample() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.6, 0.3, 0.1], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn sum_rows_columnwise() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_rows().unwrap().as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn mse_symmetric_and_zero_on_equal() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        assert_eq!(a.mse(&a).unwrap(), 0.0);
        assert_eq!(a.mse(&b).unwrap(), b.mse(&a).unwrap());
        assert_eq!(a.mse(&b).unwrap(), 2.5);
    }
}
