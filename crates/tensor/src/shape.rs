use serde::{Deserialize, Serialize};

use crate::TensorError;

/// The shape of a tensor: a list of dimension sizes, row-major.
///
/// `Shape` owns its dimension list and pre-computes the element count so
/// repeated volume queries are free.
///
/// # Example
///
/// ```
/// use fhdnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
    volume: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// A zero-length slice denotes a scalar (volume 1).
    pub fn new(dims: &[usize]) -> Self {
        let volume = dims.iter().product();
        Shape {
            dims: dims.to_vec(),
            volume,
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.volume
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat (row-major) offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if `index` has the wrong rank or any coordinate is
    /// out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, (&d, &s))) in index
            .iter()
            .zip(self.dims.iter().zip(strides.iter()))
            .enumerate()
        {
            if i >= d {
                return Err(TensorError::AxisOutOfRange {
                    axis,
                    rank: self.rank(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        let volume = dims.iter().product();
        Shape { dims, volume }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.volume(), 60);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dims(), &[3, 4, 5]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_bounds_checked() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn zero_dim_gives_zero_volume() {
        let s = Shape::new(&[4, 0, 2]);
        assert_eq!(s.volume(), 0);
    }
}
