use rand::Rng;
use rand_distr::{Distribution, StandardNormal, Uniform};
use serde::{Deserialize, Serialize};

use crate::{Result, Shape, TensorError};

/// A dense, row-major, contiguous `f32` tensor.
///
/// `Tensor` is the workhorse container for this reproduction: CNN
/// activations and weights, hyperdimensional projection matrices, and
/// class-prototype matrices are all `Tensor`s.
///
/// # Example
///
/// ```
/// use fhdnn_tensor::Tensor;
///
/// # fn main() -> Result<(), fhdnn_tensor::TensorError> {
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` is not the
    /// shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.volume()],
            shape,
        }
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.volume()],
            shape,
        }
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A tensor with entries drawn i.i.d. from `N(0, std^2)`.
    pub fn randn<R: Rng + ?Sized>(dims: &[usize], std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.volume())
            .map(|_| {
                let z: f32 = StandardNormal.sample(rng);
                z * std
            })
            .collect();
        Tensor { data, shape }
    }

    /// A tensor with entries drawn i.i.d. from `U(lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn rand_uniform<R: Rng + ?Sized>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        assert!(lo <= hi, "uniform bounds out of order: {lo} > {hi}");
        let shape = Shape::new(dims);
        let dist = Uniform::new_inclusive(lo, hi);
        let data = (0..shape.volume()).map(|_| dist.sample(rng)).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of bounds or has wrong rank.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of bounds or has wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Borrows row `i` of a rank-2 tensor as a slice.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2 or `i` is out of range.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if i >= rows {
            return Err(TensorError::AxisOutOfRange {
                axis: i,
                rank: rows,
            });
        }
        Ok(&self.data[i * cols..(i + 1) * cols])
    }

    /// Mutably borrows row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2 or `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> Result<&mut [f32]> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if i >= rows {
            return Err(TensorError::AxisOutOfRange {
                axis: i,
                rank: rows,
            });
        }
        Ok(&mut self.data[i * cols..(i + 1) * cols])
    }

    /// Copies a contiguous leading-axis slab `[start, end)` of the first
    /// dimension into a new tensor.
    ///
    /// For a `[N, ...]` tensor this extracts items `start..end` along the
    /// batch axis — the primitive behind mini-batching.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors or out-of-range bounds.
    pub fn slice_first_axis(&self, start: usize, end: usize) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape.dims()[0];
        if start > end || end > n {
            return Err(TensorError::InvalidArgument(format!(
                "slice [{start}, {end}) out of range for first axis of size {n}"
            )));
        }
        let inner: usize = self.shape.dims()[1..].iter().product();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = end - start;
        Tensor::from_vec(self.data[start * inner..end * inner].to_vec(), &dims)
    }

    /// Concatenates tensors along the first axis.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is empty or trailing dimensions differ.
    pub fn concat_first_axis(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of zero tensors".into()))?;
        let tail = &first.dims()[1..];
        let mut total = 0;
        for p in parts {
            if p.shape.rank() == 0 || &p.dims()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            total += p.dims()[0];
        }
        let mut dims = first.dims().to_vec();
        dims[0] = total;
        let mut data = Vec::with_capacity(Shape::new(&dims).volume());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(data, &dims)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} {:?}", self.shape, &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.get(&[1, 2]).unwrap(), 0.0);
        assert_eq!(t.as_slice().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn randn_deterministic_by_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&[4, 4], 1.0, &mut r1);
        let b = Tensor::randn(&[4, 4], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_scales_std() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = t.as_slice().iter().sum::<f32>() / t.len() as f32;
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.row(1).unwrap(), &[3.0, 4.0, 5.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn row_mut_writes_through() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.row_mut(0).unwrap()[1] = 9.0;
        assert_eq!(t.get(&[0, 1]).unwrap(), 9.0);
    }

    #[test]
    fn slice_first_axis_extracts_batch() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 2, 2]).unwrap();
        let s = t.slice_first_axis(1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.as_slice()[0], 4.0);
        assert!(t.slice_first_axis(2, 4).is_err());
    }

    #[test]
    fn concat_first_axis_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]).unwrap();
        let a = t.slice_first_axis(0, 1).unwrap();
        let b = t.slice_first_axis(1, 3).unwrap();
        let joined = Tensor::concat_first_axis(&[&a, &b]).unwrap();
        assert_eq!(joined, t);
    }

    #[test]
    fn concat_rejects_mismatched_tail() {
        let a = Tensor::zeros(&[1, 3]);
        let b = Tensor::zeros(&[1, 4]);
        assert!(Tensor::concat_first_axis(&[&a, &b]).is_err());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), 7.5);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.0], &[2, 2]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
