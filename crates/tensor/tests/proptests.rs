//! Property-based tests of the tensor algebra.

use fhdnn_tensor::Tensor;
use proptest::prelude::*;

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn from_vec_respects_volume(rows in 1usize..6, cols in 1usize..6) {
        let data = vec![0.0; rows * cols];
        let t = Tensor::from_vec(data, &[rows, cols]).unwrap();
        prop_assert_eq!(t.len(), rows * cols);
        prop_assert!(Tensor::from_vec(vec![0.0; rows * cols + 1], &[rows, cols]).is_err());
    }

    #[test]
    fn addition_is_commutative(xs in vec_of(12), ys in vec_of(12)) {
        let a = Tensor::from_vec(xs, &[3, 4]).unwrap();
        let b = Tensor::from_vec(ys, &[3, 4]).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn zero_is_additive_identity(xs in vec_of(10)) {
        let a = Tensor::from_vec(xs, &[10]).unwrap();
        let z = Tensor::zeros(&[10]);
        prop_assert_eq!(a.add(&z).unwrap(), a);
    }

    #[test]
    fn matmul_identity_is_neutral(xs in vec_of(9)) {
        let a = Tensor::from_vec(xs, &[3, 3]).unwrap();
        let left = Tensor::eye(3).matmul(&a).unwrap();
        let right = a.matmul(&Tensor::eye(3)).unwrap();
        for i in 0..9 {
            prop_assert!(close(left.as_slice()[i], a.as_slice()[i]));
            prop_assert!(close(right.as_slice()[i], a.as_slice()[i]));
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        xs in vec_of(6), ys in vec_of(6), zs in vec_of(6)
    ) {
        let a = Tensor::from_vec(xs, &[2, 3]).unwrap();
        let b = Tensor::from_vec(ys, &[3, 2]).unwrap();
        let c = Tensor::from_vec(zs, &[3, 2]).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for i in 0..lhs.len() {
            prop_assert!(
                close(lhs.as_slice()[i], rhs.as_slice()[i]),
                "{} vs {}", lhs.as_slice()[i], rhs.as_slice()[i]
            );
        }
    }

    #[test]
    fn transpose_swaps_matmul_order(xs in vec_of(6), ys in vec_of(6)) {
        let a = Tensor::from_vec(xs, &[2, 3]).unwrap();
        let b = Tensor::from_vec(ys, &[3, 2]).unwrap();
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for i in 0..lhs.len() {
            prop_assert!(close(lhs.as_slice()[i], rhs.as_slice()[i]));
        }
    }

    #[test]
    fn matmul_nt_tn_consistent_with_transpose(xs in vec_of(6), ys in vec_of(6)) {
        let a = Tensor::from_vec(xs, &[2, 3]).unwrap();
        let b = Tensor::from_vec(ys, &[2, 3]).unwrap();
        let nt = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose().unwrap()).unwrap();
        prop_assert_eq!(nt, explicit);
        let tn = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        prop_assert_eq!(tn, explicit);
    }

    #[test]
    fn argmax_points_at_maximum(xs in vec_of(20)) {
        let t = Tensor::from_vec(xs.clone(), &[20]).unwrap();
        let idx = t.argmax().unwrap();
        let max = t.max().unwrap();
        prop_assert_eq!(xs[idx], max);
        prop_assert!(xs.iter().all(|&x| x <= max));
    }

    #[test]
    fn cauchy_schwarz_holds(xs in vec_of(16), ys in vec_of(16)) {
        let a = Tensor::from_vec(xs, &[16]).unwrap();
        let b = Tensor::from_vec(ys, &[16]).unwrap();
        let dot = a.dot(&b).unwrap().abs();
        prop_assert!(dot <= a.norm() * b.norm() * (1.0 + 1e-4));
        let cos = a.cosine_similarity(&b).unwrap();
        prop_assert!((-1.0001..=1.0001).contains(&cos));
    }

    #[test]
    fn sign_pm1_is_bipolar_and_idempotent(xs in vec_of(16)) {
        let t = Tensor::from_vec(xs, &[16]).unwrap();
        let s = t.sign_pm1();
        prop_assert!(s.as_slice().iter().all(|&x| x == 1.0 || x == -1.0));
        prop_assert_eq!(s.sign_pm1(), s);
    }

    #[test]
    fn slice_concat_roundtrip(
        xs in vec_of(24), cut in 1usize..5
    ) {
        let t = Tensor::from_vec(xs, &[6, 4]).unwrap();
        let head = t.slice_first_axis(0, cut).unwrap();
        let tail = t.slice_first_axis(cut, 6).unwrap();
        let joined = Tensor::concat_first_axis(&[&head, &tail]).unwrap();
        prop_assert_eq!(joined, t);
    }

    #[test]
    fn scale_then_norm_scales_norm(xs in vec_of(8), s in 0.0f32..10.0) {
        let t = Tensor::from_vec(xs, &[8]).unwrap();
        let scaled = t.scale(s);
        prop_assert!(close(scaled.norm(), t.norm() * s));
    }

    #[test]
    fn sum_rows_matches_total(xs in vec_of(12)) {
        let t = Tensor::from_vec(xs, &[3, 4]).unwrap();
        let per_col = t.sum_rows().unwrap();
        prop_assert!(close(per_col.sum(), t.sum()));
    }
}
