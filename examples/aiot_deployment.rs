//! AIoT deployment scenario: a fleet of battery-powered camera nodes on a
//! lossy LPWAN uplink (the paper's motivating setting).
//!
//! Trains FHDnn and the FedAvg/ResNet baseline on the same non-IID data
//! under 20% packet loss — the realistic operating point [Hu et al. 2020]
//! says an energy-efficient IoT network should tolerate — then prices
//! both out in update bytes, LTE airtime and on-device energy.
//!
//! ```text
//! cargo run --release --example aiot_deployment
//! ```

use fhdnn::channel::lte::LteLink;
use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::federated::comm::CommReport;
use fhdnn::federated::cost::{hd_encode_flops, hd_refine_flops, DeviceProfile};
use fhdnn::nn::flops::training_flops;
use fhdnn::nn::models::resnet_lite;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("AIoT deployment: 6 camera nodes, non-IID data, 20% packet loss\n");
    let spec = ExperimentSpec::quick(Workload::Cifar).non_iid();
    let channel = PacketLossChannel::new(0.20, 256 * 8)?;

    let fh = spec.run_fhdnn(&channel)?;
    println!(
        "FHDnn   : final accuracy {:.3} ({} rounds, {} B/update)",
        fh.history.final_accuracy(),
        fh.history.rounds.len(),
        fh.update_bytes
    );
    let cnn = spec.run_resnet(&channel)?;
    println!(
        "ResNet  : final accuracy {:.3} ({} rounds, {} B/update)",
        cnn.history.final_accuracy(),
        cnn.history.rounds.len(),
        cnn.update_bytes
    );

    // Network cost of the whole campaign.
    let target = 0.9 * fh.history.final_accuracy();
    let rep_fh = CommReport::from_history(&fh.history, target, &LteLink::error_admitting());
    let rep_cnn = CommReport::from_history(&cnn.history, target, &LteLink::error_free());
    println!("\nnetwork cost to {:.0}% accuracy:", target * 100.0);
    println!(
        "  FHDnn  : {} B/client, {:.2} s LTE uplink",
        rep_fh.bytes_per_client, rep_fh.uplink_seconds
    );
    println!(
        "  ResNet : {} B/client, {:.2} s LTE uplink (target reached: {})",
        rep_cnn.bytes_per_client,
        rep_cnn.uplink_seconds,
        rep_cnn.rounds_to_target.is_some()
    );

    // On-device cost of one local round on a Raspberry Pi-class node.
    let mut rng = StdRng::seed_from_u64(0);
    let net = resnet_lite(spec.backbone, &mut rng)?;
    let samples = spec.train_size / spec.fl.num_clients;
    let input = [samples, spec.backbone.in_channels, 16, 16];
    let cnn_flops = spec.fl.local_epochs as f64 * training_flops(&net, &input)? as f64;
    let hd_flops = net.flops(&input)? as f64
        + hd_encode_flops(
            samples as u64,
            spec.feature_width() as u64,
            spec.hd_dim as u64,
        ) as f64
        + spec.fl.local_epochs as f64
            * hd_refine_flops(samples as u64, 10, spec.hd_dim as u64) as f64;
    let rpi = DeviceProfile::raspberry_pi_3b();
    let c_cnn = rpi.estimate(cnn_flops)?;
    let c_hd = rpi.estimate(hd_flops)?;
    println!("\non-device cost per round ({}):", rpi.name);
    println!("  FHDnn  : {:.3} s, {:.3} J", c_hd.seconds, c_hd.joules);
    println!(
        "  ResNet : {:.3} s, {:.3} J  ({:.1}x more energy)",
        c_cnn.seconds,
        c_cnn.joules,
        c_cnn.joules / c_hd.joules
    );
    Ok(())
}
