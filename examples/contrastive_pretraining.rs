//! Contrastive pretraining and transfer: pretrain a SimCLR encoder on an
//! unlabeled pool from one corpus, freeze it, and use it as FHDnn's
//! feature extractor on a *different* corpus — the class-agnostic
//! transfer property the paper cites as the reason for choosing SimCLR
//! (§3.2).
//!
//! ```text
//! cargo run --release --example contrastive_pretraining
//! ```

use fhdnn::channel::NoiselessChannel;
use fhdnn::contrastive::augment::AugmentConfig;
use fhdnn::contrastive::pretrain::{SimClrConfig, SimClrTrainer};
use fhdnn::datasets::image::SynthSpec;
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::extractor::FeatureExtractor;
use fhdnn::nn::models::{ResNetConfig, TrunkArch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pretrain on unlabeled Fashion-like images.
    let backbone = ResNetConfig {
        in_channels: 1,
        base_width: 8,
        blocks_per_stage: 1,
        num_classes: 10,
    };
    let config = SimClrConfig {
        backbone,
        arch: TrunkArch::ResNet,
        projection_dim: 32,
        temperature: 0.5,
        batch_size: 32,
        epochs: 6,
        learning_rate: 0.03,
        augment: AugmentConfig {
            max_shift: 2,
            flip_prob: 0.0,
            brightness: 0.15,
            contrast: 0.15,
            noise_std: 0.15,
            cutout: 3,
        },
    };
    let pool = SynthSpec::fashion_like().generate_unlabeled(360, 1)?;
    println!("pretraining SimCLR encoder on 360 unlabeled fashion-like images…");
    let mut trainer = SimClrTrainer::new(config, 1, 42)?;
    let report = trainer.pretrain(&pool)?;
    println!(
        "  NT-Xent loss {:.3} -> {:.3} over {} steps (alignment {:.2})",
        report.initial_loss, report.final_loss, report.steps, report.final_alignment
    );
    let width = trainer.feature_width();
    let trunk = trainer.into_encoder();

    // 2. Transfer: the frozen encoder drives federated HD learning on the
    //    *MNIST-like* corpus it never saw.
    let spec = ExperimentSpec::quick(Workload::Mnist);
    let mut extractor = FeatureExtractor::from_pretrained(trunk, width)?;
    let mut system = spec.build_fhdnn_with(&mut extractor)?;
    let history = system.run(&NoiselessChannel::new(), "transfer")?;
    println!(
        "\ntransfer to mnist-like federated task: accuracy by round {:?}",
        history
            .rounds
            .iter()
            .map(|r| (r.test_accuracy * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // 3. Compare with an untrained encoder of the same architecture.
    let mut random = FeatureExtractor::random(backbone, 7)?;
    let mut baseline = spec.build_fhdnn_with(&mut random)?;
    let base_history = baseline.run(&NoiselessChannel::new(), "random")?;
    println!(
        "\npretrained encoder: {:.3} final accuracy vs random encoder: {:.3}",
        history.final_accuracy(),
        base_history.final_accuracy()
    );
    Ok(())
}
