//! Pushing FHDnn to the extreme edge: a MobileNet-style extractor, 1-bit
//! binary HD uploads, and a bursty Gilbert–Elliott LPWAN link — the
//! endpoint of the paper's communication/compute argument, built from
//! this repository's extensions.
//!
//! ```text
//! cargo run --release --example extreme_efficiency
//! ```

use fhdnn::channel::gilbert::GilbertElliottChannel;
use fhdnn::channel::NoiselessChannel;
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::federated::fedhd::HdTransport;
use fhdnn::nn::models::TrunkArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // MobileNet-style depthwise-separable extractor + binary uploads.
    let mut spec = ExperimentSpec::quick(Workload::Fashion);
    spec.arch = TrunkArch::MobileNet;
    spec = spec.with_light_pretrain();
    if let Some(p) = &mut spec.pretrain {
        p.arch = TrunkArch::MobileNet;
    }

    let float_bytes = HdTransport::Float.update_bytes(10, spec.hd_dim);
    spec.transport = HdTransport::Binary;
    let binary_bytes = spec.transport.update_bytes(10, spec.hd_dim);
    println!(
        "update size: {float_bytes} B (float32) -> {binary_bytes} B (binary, {}x smaller)\n",
        float_bytes / binary_bytes
    );

    // Clean-link reference.
    let clean = spec.run_fhdnn(&NoiselessChannel::new())?;
    println!(
        "clean link          : final accuracy {:.3}",
        clean.history.final_accuracy()
    );

    // Bursty LPWAN: 1% loss in the Good state, 80% in the Bad state,
    // sticky transitions — ~17% average loss arriving in bursts.
    let lpwan = GilbertElliottChannel::new(0.01, 0.8, 0.05, 0.2, 256 * 8)?;
    println!(
        "burst loss expected : {:.1}% of packets (Gilbert-Elliott)",
        lpwan.stationary_loss() * 100.0
    );
    let bursty = spec.run_fhdnn(&lpwan)?;
    println!(
        "bursty LPWAN link   : final accuracy {:.3}",
        bursty.history.final_accuracy()
    );

    let delta = (clean.history.final_accuracy() - bursty.history.final_accuracy()) * 100.0;
    println!(
        "\nbinary HD uploads over a bursty link stay within {:.1} accuracy \
         points of the clean link while transmitting {}x less — dimension-\
         level dispersal does not care whether losses arrive in bursts.",
        delta.abs(),
        float_bytes / binary_bytes
    );
    Ok(())
}
