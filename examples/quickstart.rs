//! Quickstart: train FHDnn federatedly on the synthetic CIFAR stand-in
//! over a clean channel and print the learning curve.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fhdnn::channel::NoiselessChannel;
use fhdnn::experiment::{ExperimentSpec, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A laptop-scale FHDnn experiment: 6 clients, 5 rounds, frozen
    // feature extractor + federated hyperdimensional learner.
    let spec = ExperimentSpec::quick(Workload::Cifar);
    println!(
        "FHDnn quickstart: {} clients, {} rounds, E={}, B={}, C={}",
        spec.fl.num_clients,
        spec.fl.rounds,
        spec.fl.local_epochs,
        spec.fl.batch_size,
        spec.fl.client_fraction
    );

    let outcome = spec.run_fhdnn(&NoiselessChannel::new())?;
    println!("\nround  accuracy  bytes/client");
    for r in &outcome.history.rounds {
        println!(
            "{:>5}  {:>8.3}  {:>12}",
            r.round + 1,
            r.test_accuracy,
            r.bytes_per_client
        );
    }
    println!(
        "\nfinal accuracy: {:.1}%  (update size {} bytes — only the HD \
         model ever crosses the network)",
        outcome.history.final_accuracy() * 100.0,
        outcome.update_bytes
    );
    Ok(())
}
