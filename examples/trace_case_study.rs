//! Regeneration harness for EXPERIMENTS.md "Round anatomy": a skewed
//! federation (client 3 holds 4x the samples) with stragglers, traced
//! through the execution tracer. Prints every task's simulated costs and
//! each round's critical-path summary; the tables in the case study are
//! copied from this output.
//!
//! ```text
//! cargo run --release --example trace_case_study
//! ```

use std::sync::Arc;

use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::datasets::features::FeatureSpec;
use fhdnn::federated::config::FlConfig;
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::model::HdModel;
use fhdnn::telemetry::clock::ManualClock;
use fhdnn::telemetry::sink::MemorySink;
use fhdnn::telemetry::trace::summarize;
use fhdnn::telemetry::Recorder;
use fhdnn::tensor::Tensor;

const DIM: usize = 1024;

fn main() {
    // 4 clients with skewed shards: client 3 holds 4x the samples.
    let sizes = [25usize, 25, 25, 100];
    let spec = FeatureSpec {
        num_classes: 5,
        width: 40,
        noise_std: 0.6,
        class_seed: 11,
    };
    let total: usize = sizes.iter().sum();
    let train = spec.generate(total, 0).unwrap();
    let test = spec.generate(60, 1).unwrap();
    let enc = RandomProjectionEncoder::new(DIM, 40, 3).unwrap();
    let h_train = enc.encode_batch(&train.features).unwrap();
    let h_test = enc.encode_batch(&test.features).unwrap();
    let mut cursor = 0usize;
    let clients: Vec<HdClientData> = sizes
        .iter()
        .map(|&n| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for i in cursor..cursor + n {
                data.extend_from_slice(h_train.row(i).unwrap());
                labels.push(train.labels[i]);
            }
            cursor += n;
            HdClientData {
                hypervectors: Tensor::from_vec(data, &[n, DIM]).unwrap(),
                labels,
            }
        })
        .collect();
    let config = FlConfig {
        num_clients: 4,
        rounds: 6,
        local_epochs: 2,
        batch_size: 10,
        client_fraction: 0.75,
        seed: 7,
        ..FlConfig::default()
    };
    let global = HdModel::new(5, DIM).unwrap();
    let mut fed = HdFederation::new(
        global,
        clients,
        config,
        HdTransport::Quantized { bitwidth: 8 },
    )
    .unwrap();
    fed.set_threads(4);
    fed.set_straggler_prob(0.3).unwrap();
    let tel =
        Recorder::with_sink_and_clock(Arc::new(MemorySink::new()), Arc::new(ManualClock::new(10)));
    fed.set_telemetry(tel.clone());
    let channel = PacketLossChannel::new(0.1, 256).unwrap();
    let test_data = HdClientData {
        hypervectors: h_test,
        labels: test.labels,
    };
    let _ = fed.run(&channel, &test_data, "case").unwrap();
    tel.flush();
    let rows = tel.trace_snapshot();
    println!(
        "device {:?} link {:?}",
        fed.device_profile(),
        fed.lte_link()
    );
    println!("update bytes {}", fed.update_bytes());
    for r in &rows {
        println!(
            "round {} client {} arrived {} compute_us {} uplink_us {}",
            r.round, r.client, r.arrived, r.sim_compute_micros, r.sim_uplink_micros
        );
    }
    for s in summarize(&rows) {
        println!(
            "round {} tasks {} crit {} sim_crit_us {} sim_round_us {}",
            s.round, s.tasks, s.critical_client, s.sim_critical_micros, s.sim_round_micros
        );
    }
}
