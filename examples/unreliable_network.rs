//! Sweep FHDnn across the paper's three unreliable-channel models and
//! print the resilience table (the Figure 8 story, FHDnn side).
//!
//! ```text
//! cargo run --release --example unreliable_network
//! ```

use fhdnn::channel::awgn::AwgnChannel;
use fhdnn::channel::bit_error::BitErrorChannel;
use fhdnn::channel::packet::{per_from_ber, PacketLossChannel};
use fhdnn::channel::{Channel, NoiselessChannel};
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::federated::fedhd::HdTransport;

fn run(spec: &ExperimentSpec, channel: &dyn Channel) -> Result<f32, fhdnn::FhdnnError> {
    Ok(spec.run_fhdnn(channel)?.history.final_accuracy())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::quick(Workload::Fashion);
    let clean = run(&spec, &NoiselessChannel::new())?;
    println!("clean channel baseline: {clean:.3}\n");

    println!("packet loss (UDP-style erasure, 256-byte packets):");
    for loss in [0.01, 0.1, 0.2, 0.3] {
        let acc = run(&spec, &PacketLossChannel::new(loss, 256 * 8)?)?;
        println!("  loss {loss:>5.2}  ->  accuracy {acc:.3}");
    }

    println!("\nadditive Gaussian noise (uncoded analog uplink):");
    for snr in [5.0, 10.0, 20.0, 30.0] {
        let acc = run(&spec, &AwgnChannel::new(snr)?)?;
        println!("  SNR {snr:>4.0} dB ->  accuracy {acc:.3}");
    }

    println!("\nbit errors (binary symmetric channel, AGC-quantized 16-bit words):");
    let mut q_spec = spec.clone();
    q_spec.transport = HdTransport::Quantized { bitwidth: 16 };
    for ber in [1e-5, 1e-4, 1e-3, 1e-2] {
        let acc = run(&q_spec, &BitErrorChannel::new(ber)?)?;
        let pp = per_from_ber(ber, 256 * 8);
        println!("  BER {ber:>7.0e} (packet-error prob {pp:.3}) -> accuracy {acc:.3}");
    }
    println!(
        "\nFHDnn holds within a few points of the clean baseline across \
         every channel — the paper's Figure 8 claim."
    );
    Ok(())
}
