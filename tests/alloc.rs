//! Allocation-behaviour lockdown for the tracked global allocator.
//!
//! Two properties ride on `fhdnn::telemetry::mem`:
//!
//! 1. The bit-packed HD kernels' hot loops are **allocation-free** —
//!    train/refine/predict touch only caller-owned buffers, which is
//!    what makes the packed path viable on allocator-poor AIoT targets.
//!    Pinned with *thread-local* counters, so concurrently running
//!    tests cannot pollute the measurement.
//! 2. Per-round peak memory **scales with the client count** — the
//!    aggregation path materializes every arrived update, which is the
//!    O(clients) wall that ROADMAP item 2's streaming aggregation is
//!    aimed at. Measured with the process-global watermark; since
//!    unrelated traffic can only inflate a peak, each count takes the
//!    minimum of three runs.

use fhdnn::channel::NoiselessChannel;
use fhdnn::datasets::features::FeatureSpec;
use fhdnn::datasets::partition::Partition;
use fhdnn::federated::config::FlConfig;
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::model::HdModel;
use fhdnn::hdc::packed::{pack_signs, pack_signs_into, words_for, PackedBatch, PackedHdModel};
use fhdnn::telemetry::mem;
use fhdnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 2048;
const CLASSES: usize = 6;

fn sample_batch(rows: usize, seed: u64) -> (PackedBatch, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..rows * DIM)
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
        .collect();
    let labels: Vec<usize> = (0..rows).map(|r| r % CLASSES).collect();
    (PackedBatch::from_rows(&data, rows, DIM), labels)
}

#[test]
fn packed_kernel_hot_paths_are_allocation_free() {
    let (batch, labels) = sample_batch(48, 11);
    let mut model = PackedHdModel::new(CLASSES, DIM).unwrap();
    let values: Vec<f32> = (0..DIM)
        .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
        .collect();
    let mut packed = vec![0u64; words_for(DIM)];
    let mut sims = vec![0i64; CLASSES];

    // Warm-up: absorb any one-time lazy allocations so the measured
    // window sees only the kernels' own behaviour.
    model.one_shot_train(&batch, &labels).unwrap();
    model.refine_epoch(&batch, &labels).unwrap();
    pack_signs_into(&values, &mut packed);
    model.similarities_into(&packed, &mut sims);
    let erased = vec![0u64; words_for(DIM)];

    let mark = mem::thread_mark();
    model.one_shot_train(&batch, &labels).unwrap();
    let updates = model.refine_epoch(&batch, &labels).unwrap();
    pack_signs_into(&values, &mut packed);
    model.similarities_into(&packed, &mut sims);
    let mut pred = 0usize;
    for r in 0..batch.rows() {
        pred = pred.wrapping_add(model.predict_packed(batch.row(r)));
    }
    // The server-side bundle fold: majority-vote counter accumulation
    // over arrived sign rows, then an in-place repack of every row.
    for c in 0..CLASSES {
        model.vote_row(c, &packed, &erased);
    }
    model.repack_all();
    let delta = mark.delta();
    assert_eq!(
        delta.allocs, 0,
        "packed hot path allocated {} times ({} bytes); updates={updates} pred={pred}",
        delta.allocs, delta.alloc_bytes
    );

    // Sanity: the allocating conveniences do register on the counters,
    // so a zero above means "no allocations", not "broken tracking".
    let mark = mem::thread_mark();
    let heap_packed = pack_signs(&values);
    assert!(mark.delta().allocs >= 1, "tracking is live");
    assert_eq!(heap_packed, packed);
}

/// Builds a one-round fedhd federation over `num_clients` clients with
/// identical per-client data volume and full participation.
fn run_one_round(num_clients: usize, seed: u64, transport: HdTransport) -> u64 {
    const FDIM: usize = 1024;
    let spec = FeatureSpec {
        num_classes: 5,
        width: 40,
        noise_std: 0.6,
        class_seed: 11,
    };
    let per_client = 25;
    let train = spec.generate(num_clients * per_client, seed).unwrap();
    let test = spec.generate(40, seed + 1).unwrap();
    let enc = RandomProjectionEncoder::new(FDIM, 40, 3).unwrap();
    let h_train = enc.encode_batch(&train.features).unwrap();
    let h_test = enc.encode_batch(&test.features).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = Partition::Iid
        .split(&train.labels, num_clients, &mut rng)
        .unwrap();
    let clients: Vec<HdClientData> = parts
        .iter()
        .map(|idx| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for &i in idx {
                data.extend_from_slice(h_train.row(i).unwrap());
                labels.push(train.labels[i]);
            }
            HdClientData {
                hypervectors: Tensor::from_vec(data, &[idx.len(), FDIM]).unwrap(),
                labels,
            }
        })
        .collect();
    let config = FlConfig {
        num_clients,
        rounds: 1,
        local_epochs: 1,
        batch_size: 10,
        client_fraction: 1.0,
        seed: 7,
        ..FlConfig::default()
    };
    let global = HdModel::new(5, FDIM).unwrap();
    let mut fed = HdFederation::new(global, clients, config, transport).unwrap();
    let test_data = HdClientData {
        hypervectors: h_test,
        labels: test.labels,
    };
    let history = fed
        .run(&NoiselessChannel::new(), &test_data, "alloc")
        .unwrap();
    history.rounds[0].mem_peak_bytes
}

#[test]
fn round_peak_memory_scales_with_client_count() {
    // Minimum of three runs per count: concurrent allocation traffic
    // can only push a peak up, never down, so the min is the cleanest
    // observation of the engine's own footprint.
    let min_peak = |n: usize| {
        (0..3)
            .map(|i| run_one_round(n, 100 + i, HdTransport::Float))
            .min()
            .expect("three runs")
    };
    let small = min_peak(2);
    let large = min_peak(16);
    assert!(small > 0, "2-client round recorded no peak");
    assert!(
        large > small,
        "peak did not grow with clients: 2 -> {small}, 16 -> {large}"
    );
    assert!(
        large as f64 >= 2.0 * small as f64,
        "aggregation is expected to hold O(clients) update state \
         (2 clients peaked at {small} B, 16 at {large} B); if this now \
         scales sublinearly, ROADMAP item 2's streaming aggregation \
         landed — update this lockdown and EXPERIMENTS.md"
    );
}

/// The packed-round row of the scaling table: the binary transport's
/// retained per-client state is 1 bit/dim (plus the erasure mask)
/// instead of 32, so while its peak still grows with the client count —
/// the fixed-order fold materializes every arrived update — the
/// O(clients) wall sits far lower than the float transport's.
#[test]
fn packed_round_peak_memory_scales_with_client_count_but_stays_small() {
    let min_peak = |n: usize, t: HdTransport| {
        (0..3)
            .map(|i| run_one_round(n, 100 + i, t))
            .min()
            .expect("three runs")
    };
    let small = min_peak(2, HdTransport::Binary);
    let large = min_peak(16, HdTransport::Binary);
    assert!(small > 0, "2-client packed round recorded no peak");
    assert!(
        large > small,
        "packed peak did not grow with clients: 2 -> {small}, 16 -> {large}"
    );
    let float_large = min_peak(16, HdTransport::Float);
    assert!(
        2 * large < float_large,
        "packed 16-client peak ({large} B) should be well under half the \
         float transport's ({float_large} B): binary updates retain one \
         sign bit per dimension, not an f32"
    );
}
