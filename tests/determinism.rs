//! Thread-count invariance of the parallel round engine.
//!
//! Both federation engines fan client work out over the deterministic
//! pool in `fhdnn-federated`'s `parallel` module; this suite proves the
//! tentpole invariant end to end: the thread count is a pure wall-clock
//! knob. Serialized round metrics, every emitted health record (and all
//! other non-span telemetry), and the final model bytes are identical at
//! `--threads 1`, `2` and `8` — with stragglers, lossy channels and
//! compressed uploads in the mix so every per-client random draw is
//! exercised.
//!
//! Span *durations* are the one telemetry field that legitimately varies
//! with scheduling (workers interleave their clock reads), so the event
//! comparison excludes `kind == span`. Memory watermarks (`mem.*` events
//! and the `mem_*` fields of round metrics and health records) measure
//! the process's real heap, which depends on thread count and on what
//! else the test harness has allocated — the comparison zeroes them, and
//! a dedicated test pins that they are live (nonzero) instead. The
//! execution trace's *measured* lane is in the same class: per-task
//! worker indices and queue/execute stamps, per-round worker counts,
//! utilization and queue depth all depend on how many workers raced the
//! claim counter, so the comparison zeroes those fields (and drops the
//! `trace.worker_utilization` gauge) while holding the *simulated* lane
//! — client identity, device-compute and uplink-airtime micros, and the
//! critical-path attribution built from them — bit-exact.
//!
//! The CI matrix additionally exports `FHDNN_TEST_THREADS`; when set, the
//! value joins the compared thread counts.

use std::sync::Arc;

use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::datasets::features::FeatureSpec;
use fhdnn::datasets::image::SynthSpec;
use fhdnn::datasets::partition::Partition;
use fhdnn::federated::config::FlConfig;
use fhdnn::federated::fedavg::{carve_clients, CnnFederation, LocalSgdConfig};
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::federated::metrics::RunHistory;
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::model::HdModel;
use fhdnn::nn::models::small_cnn;
use fhdnn::telemetry::clock::ManualClock;
use fhdnn::telemetry::event::{Event, EventKind, FieldValue};
use fhdnn::telemetry::sink::MemorySink;
use fhdnn::telemetry::{Recorder, Telemetry};
use fhdnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 1024;
const NUM_CLIENTS: usize = 4;

/// Thread counts every run is compared across. `FHDNN_TEST_THREADS`
/// (exported by the CI matrix) joins the list when set.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Some(n) = std::env::var("FHDNN_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn memory_recorder() -> (Telemetry, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(10)));
    (tel, sink)
}

/// Every captured event except spans, whose durations depend on how
/// workers interleave clock reads. Raw memory watermarks are likewise
/// environment-dependent (see the module docs), so `mem.*` events drop
/// and the `mem_*` fields of `health.round` events zero. Everything
/// else — counters, gauges, histograms, `health.round` records, and all
/// timestamps — must be deterministic.
fn non_span_events(sink: &MemorySink) -> Vec<Event> {
    sink.events()
        .into_iter()
        .filter(|e| {
            e.kind != EventKind::Span
                && !e.name.starts_with("mem.")
                && e.name != "trace.worker_utilization"
                // The jsonl_bytes self-meter counts serialized bytes,
                // whose digit widths include the heap watermarks — as
                // environment-dependent as the watermarks themselves.
                && e.name != "telemetry.overhead.jsonl_bytes"
        })
        .map(|mut e| {
            if e.name == "health.round" {
                for key in ["mem_peak_bytes", "mem_allocs", "mem_bytes_per_client"] {
                    if let Some(v) = e.fields.get_mut(key) {
                        *v = FieldValue::U64(0);
                    }
                }
            }
            // The measured lane of the execution trace is scheduling-
            // dependent by construction; the simulated lane (client,
            // sim_* micros, critical-path fields) must not move.
            if e.name == "trace.task" {
                for key in ["worker", "enqueue_micros", "start_micros", "end_micros"] {
                    if let Some(v) = e.fields.get_mut(key) {
                        *v = FieldValue::U64(0);
                    }
                }
            }
            if e.name == "trace.round" {
                for key in ["workers", "queue_depth_max"] {
                    if let Some(v) = e.fields.get_mut(key) {
                        *v = FieldValue::U64(0);
                    }
                }
                if let Some(v) = e.fields.get_mut("worker_utilization") {
                    *v = FieldValue::F64(0.0);
                }
            }
            e
        })
        .collect()
}

/// The run history as the bytes `--save` would write, with the
/// legitimately wall-clock- and heap-state-dependent fields zeroed.
fn canonical_history_json(mut history: RunHistory) -> String {
    for r in &mut history.rounds {
        r.round_seconds = 0.0;
        r.mem_peak_bytes = 0;
        r.mem_allocs = 0;
        r.mem_bytes_per_client = 0;
        r.trace_worker_utilization = 0.0;
    }
    serde_json::to_string(&history).unwrap()
}

/// Pre-encoded clients and test set, mirroring the telemetry fixtures.
fn build_hd_federation(seed: u64) -> (HdFederation, HdClientData) {
    let spec = FeatureSpec {
        num_classes: 5,
        width: 40,
        noise_std: 0.6,
        class_seed: 11,
    };
    let train = spec.generate(NUM_CLIENTS * 25, seed).unwrap();
    let test = spec.generate(60, seed + 1).unwrap();
    let enc = RandomProjectionEncoder::new(DIM, 40, 3).unwrap();
    let h_train = enc.encode_batch(&train.features).unwrap();
    let h_test = enc.encode_batch(&test.features).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = Partition::Iid
        .split(&train.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients: Vec<HdClientData> = parts
        .iter()
        .map(|idx| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for &i in idx {
                data.extend_from_slice(h_train.row(i).unwrap());
                labels.push(train.labels[i]);
            }
            HdClientData {
                hypervectors: Tensor::from_vec(data, &[idx.len(), DIM]).unwrap(),
                labels,
            }
        })
        .collect();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: 3,
        local_epochs: 2,
        batch_size: 10,
        client_fraction: 0.5,
        seed: 7,
        ..FlConfig::default()
    };
    let global = HdModel::new(5, DIM).unwrap();
    let fed = HdFederation::new(
        global,
        clients,
        config,
        HdTransport::Quantized { bitwidth: 8 },
    )
    .unwrap();
    let test_data = HdClientData {
        hypervectors: h_test,
        labels: test.labels,
    };
    (fed, test_data)
}

/// One instrumented fedhd run: (history bytes, non-span events, model
/// bytes) — the three artifacts the invariance theorem is stated over.
fn fedhd_run(threads: usize) -> (String, Vec<Event>, String) {
    let (mut fed, test) = build_hd_federation(0);
    fed.set_threads(threads);
    fed.set_straggler_prob(0.25).unwrap();
    let (tel, sink) = memory_recorder();
    fed.set_telemetry(tel.clone());
    let channel = PacketLossChannel::new(0.2, 256).unwrap();
    let history = fed.run(&channel, &test, "det").unwrap();
    tel.flush();
    let proto_bits: Vec<u32> = fed
        .global()
        .prototypes()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let model_file = serde_json::to_string(&proto_bits).unwrap();
    (
        canonical_history_json(history),
        non_span_events(&sink),
        model_file,
    )
}

#[test]
fn fedhd_outputs_identical_at_every_thread_count() {
    let baseline = fedhd_run(1);
    let records = baseline
        .1
        .iter()
        .filter(|e| e.name == "health.round")
        .count();
    assert_eq!(records, 3, "one health record per round");
    for threads in thread_counts() {
        let run = fedhd_run(threads);
        assert_eq!(
            baseline.0, run.0,
            "round metrics diverged at {threads} threads"
        );
        assert_eq!(baseline.1, run.1, "telemetry diverged at {threads} threads");
        assert_eq!(
            baseline.2, run.2,
            "model bytes diverged at {threads} threads"
        );
    }
}

/// Small CNN federation over the image stand-ins, with compressed
/// uploads so the per-client coordinate masks ride per-client RNG
/// streams too.
fn build_cnn_federation(seed: u64) -> (CnnFederation, fhdnn::datasets::image::ImageDataset) {
    let spec = SynthSpec::mnist_like();
    let pool = spec.generate(NUM_CLIENTS * 20, seed).unwrap();
    let test = spec.generate(60, seed + 1).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = Partition::Iid
        .split(&pool.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients = carve_clients(&pool, &parts).unwrap();
    let net = small_cnn(1, 16, 10, &mut rng).unwrap();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: 2,
        local_epochs: 1,
        batch_size: 10,
        client_fraction: 0.5,
        seed,
        ..FlConfig::default()
    };
    let fed = CnnFederation::new(net, clients, config, LocalSgdConfig::default()).unwrap();
    (fed, test)
}

fn fedavg_run(threads: usize) -> (String, Vec<Event>, String) {
    let (mut fed, test) = build_cnn_federation(3);
    fed.set_threads(threads);
    fed.set_upload_fraction(0.5).unwrap();
    let (tel, sink) = memory_recorder();
    fed.set_telemetry(tel.clone());
    let channel = PacketLossChannel::new(0.1, 256).unwrap();
    let history = fed.run(&channel, &test, "det").unwrap();
    tel.flush();
    // The "model file": trainable parameters plus batch-norm running
    // state, bit-exact.
    let mut bits: Vec<u32> = fed
        .global()
        .flatten_params()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    bits.extend(fed.global().running_state().iter().map(|v| v.to_bits()));
    let model_file = serde_json::to_string(&bits).unwrap();
    (
        canonical_history_json(history),
        non_span_events(&sink),
        model_file,
    )
}

#[test]
fn fedavg_outputs_identical_at_every_thread_count() {
    let baseline = fedavg_run(1);
    let records = baseline
        .1
        .iter()
        .filter(|e| e.name == "health.round")
        .count();
    assert_eq!(records, 2, "one health record per round");
    for threads in thread_counts() {
        let run = fedavg_run(threads);
        assert_eq!(
            baseline.0, run.0,
            "round metrics diverged at {threads} threads"
        );
        assert_eq!(baseline.1, run.1, "telemetry diverged at {threads} threads");
        assert_eq!(
            baseline.2, run.2,
            "model bytes diverged at {threads} threads"
        );
    }
}

/// The watermarks the comparison above zeroes out are actually live: an
/// instrumented run attributes a nonzero allocation volume to every
/// round, and the stream carries `mem.*` events.
#[test]
fn rounds_carry_nonzero_memory_watermarks() {
    let (mut fed, test) = build_hd_federation(0);
    fed.set_threads(2);
    let (tel, sink) = memory_recorder();
    fed.set_telemetry(tel.clone());
    let channel = PacketLossChannel::new(0.2, 256).unwrap();
    let history = fed.run(&channel, &test, "det").unwrap();
    tel.flush();
    for r in &history.rounds {
        assert!(
            r.mem_allocs > 0,
            "round {} recorded no allocations",
            r.round
        );
        assert!(r.mem_peak_bytes > 0, "round {} has no peak", r.round);
        assert!(
            r.mem_bytes_per_client > 0,
            "round {} has no per-client volume",
            r.round
        );
    }
    let mem_events = sink
        .events()
        .iter()
        .filter(|e| e.name.starts_with("mem."))
        .count();
    assert!(mem_events > 0, "no mem.* events in an instrumented stream");
}

/// The uninstrumented path must agree with the instrumented one at any
/// thread count: telemetry buffering cannot leak into the math.
#[test]
fn instrumentation_does_not_change_parallel_results() {
    let plain = {
        let (mut fed, test) = build_hd_federation(0);
        fed.set_threads(4);
        fed.set_straggler_prob(0.25).unwrap();
        let channel = PacketLossChannel::new(0.2, 256).unwrap();
        fed.run(&channel, &test, "det").unwrap()
    };
    let instrumented = {
        let (mut fed, test) = build_hd_federation(0);
        fed.set_threads(4);
        fed.set_straggler_prob(0.25).unwrap();
        let (tel, _sink) = memory_recorder();
        fed.set_telemetry(tel);
        let channel = PacketLossChannel::new(0.2, 256).unwrap();
        fed.run(&channel, &test, "det").unwrap()
    };
    assert_eq!(plain, instrumented);
}
