//! End-to-end integration tests spanning every crate: data generation →
//! contrastive pretraining → feature extraction → HD encoding → federated
//! rounds → evaluation.

use fhdnn::channel::NoiselessChannel;
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::federated::fedhd::HdTransport;

#[test]
fn fhdnn_pipeline_learns_each_workload() {
    // MNIST/Fashion are separable even with a random extractor; the CIFAR
    // stand-in needs the full pipeline with contrastive pretraining, as
    // in the paper.
    for (workload, pretrain, floor) in [
        (Workload::Mnist, false, 0.5),
        (Workload::Fashion, false, 0.35),
        (Workload::Cifar, true, 0.5),
    ] {
        let mut spec = ExperimentSpec::quick(workload);
        if pretrain {
            spec = spec.with_light_pretrain();
        }
        let outcome = spec.run_fhdnn(&NoiselessChannel::new()).unwrap();
        assert!(
            outcome.history.final_accuracy() > floor,
            "{workload}: accuracy {} below floor {floor}",
            outcome.history.final_accuracy()
        );
        assert_eq!(outcome.history.rounds.len(), spec.fl.rounds);
    }
}

#[test]
fn resnet_baseline_learns_mnist() {
    let mut spec = ExperimentSpec::quick(Workload::Mnist);
    spec.fl.rounds = 4;
    let outcome = spec.run_resnet(&NoiselessChannel::new()).unwrap();
    assert!(
        outcome.history.final_accuracy() > 0.3,
        "resnet accuracy {}",
        outcome.history.final_accuracy()
    );
}

#[test]
fn fhdnn_converges_faster_than_resnet_on_mnist() {
    // The paper's Figure 7 claim at reproduction scale: FHDnn needs fewer
    // rounds than ResNet to pass a shared target.
    let spec = ExperimentSpec::quick(Workload::Mnist);
    let channel = NoiselessChannel::new();
    let fh = spec.run_fhdnn(&channel).unwrap();
    let cnn = spec.run_resnet(&channel).unwrap();
    let target = 0.8
        * fh.history
            .final_accuracy()
            .min(cnn.history.final_accuracy());
    let r_fh = fh.history.rounds_to_accuracy(target);
    let r_cnn = cnn.history.rounds_to_accuracy(target);
    assert!(
        r_fh.is_some(),
        "fhdnn never reached the shared target {target}"
    );
    match (r_fh, r_cnn) {
        (Some(a), Some(b)) => assert!(a <= b, "fhdnn {a} rounds vs resnet {b}"),
        (Some(_), None) => {} // resnet never got there: even stronger
        _ => unreachable!(),
    }
}

#[test]
fn non_iid_partition_still_learns() {
    let spec = ExperimentSpec::quick(Workload::Mnist).non_iid();
    let outcome = spec.run_fhdnn(&NoiselessChannel::new()).unwrap();
    assert!(
        outcome.history.final_accuracy() > 0.4,
        "non-iid accuracy {}",
        outcome.history.final_accuracy()
    );
}

#[test]
fn quantized_transport_end_to_end() {
    let mut spec = ExperimentSpec::quick(Workload::Mnist);
    spec.transport = HdTransport::Quantized { bitwidth: 8 };
    let outcome = spec.run_fhdnn(&NoiselessChannel::new()).unwrap();
    assert!(
        outcome.history.final_accuracy() > 0.5,
        "8-bit quantized accuracy {}",
        outcome.history.final_accuracy()
    );
    // 8-bit words: a quarter of the float bytes.
    assert_eq!(outcome.update_bytes, (10 * spec.hd_dim) as u64);
}

#[test]
fn pretrained_extractor_beats_random_on_hard_data() {
    let pre = ExperimentSpec::quick(Workload::Fashion).with_light_pretrain();
    let channel = NoiselessChannel::new();
    let with = pre.run_fhdnn(&channel).unwrap().history.final_accuracy();
    let mut without = pre.clone();
    without.pretrain = None;
    let rand_acc = without
        .run_fhdnn(&channel)
        .unwrap()
        .history
        .final_accuracy();
    assert!(
        with > rand_acc,
        "pretrained {with} should beat random {rand_acc}"
    );
}
