//! Integration tests for the beyond-the-paper extensions: binary
//! transport, burst losses, MobileNet trunks, compressed CNN uploads, and
//! adaptive refinement — exercised through the public API.

use fhdnn::channel::gilbert::GilbertElliottChannel;
use fhdnn::channel::NoiselessChannel;
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::federated::fedhd::HdTransport;
use fhdnn::nn::models::TrunkArch;

#[test]
fn binary_transport_is_32x_smaller_and_competitive() {
    let spec = ExperimentSpec::quick(Workload::Mnist).with_light_pretrain();
    let channel = NoiselessChannel::new();
    let float_outcome = spec.run_fhdnn(&channel).unwrap();
    let mut binary_spec = spec.clone();
    binary_spec.transport = HdTransport::Binary;
    let binary_outcome = binary_spec.run_fhdnn(&channel).unwrap();

    assert_eq!(
        float_outcome.update_bytes,
        32 * binary_outcome.update_bytes,
        "1 bit per dimension vs 32"
    );
    assert!(
        binary_outcome.history.final_accuracy() > float_outcome.history.final_accuracy() - 0.1,
        "binary {} vs float {}",
        binary_outcome.history.final_accuracy(),
        float_outcome.history.final_accuracy()
    );
}

#[test]
fn binary_transport_survives_burst_losses() {
    let mut spec = ExperimentSpec::quick(Workload::Mnist).with_light_pretrain();
    spec.transport = HdTransport::Binary;
    let clean = spec
        .run_fhdnn(&NoiselessChannel::new())
        .unwrap()
        .history
        .final_accuracy();
    // ~17% average loss arriving in bursts.
    let bursty = GilbertElliottChannel::new(0.01, 0.8, 0.05, 0.2, 256 * 8).unwrap();
    let lossy = spec.run_fhdnn(&bursty).unwrap().history.final_accuracy();
    assert!(lossy > clean - 0.12, "clean {clean} vs bursty {lossy}");
}

#[test]
fn mobilenet_extractor_runs_end_to_end() {
    // Depthwise trunks need pretraining: untrained they destroy far more
    // information than untrained residual trunks.
    let mut spec = ExperimentSpec::quick(Workload::Mnist).with_light_pretrain();
    spec.arch = TrunkArch::MobileNet;
    if let Some(p) = &mut spec.pretrain {
        p.arch = TrunkArch::MobileNet;
    }
    let outcome = spec.run_fhdnn(&NoiselessChannel::new()).unwrap();
    assert!(
        outcome.history.final_accuracy() > 0.6,
        "mobilenet accuracy {}",
        outcome.history.final_accuracy()
    );
}

#[test]
fn compressed_cnn_is_not_robust_but_fhdnn_is() {
    use fhdnn::channel::packet::PacketLossChannel;
    let spec = ExperimentSpec::quick(Workload::Mnist).with_light_pretrain();
    let lossy = PacketLossChannel::new(0.2, 256 * 8).unwrap();
    let compressed = spec
        .run_resnet_compressed(&lossy, 0.25)
        .unwrap()
        .history
        .final_accuracy();
    let fh = spec.run_fhdnn(&lossy).unwrap().history.final_accuracy();
    assert!(
        fh > compressed + 0.2,
        "fhdnn {fh} vs compressed cnn {compressed} at 20% loss"
    );
}

#[test]
fn convergence_regret_favors_fhdnn() {
    use fhdnn::federated::convergence::mean_regret;
    let spec = ExperimentSpec::quick(Workload::Mnist).with_light_pretrain();
    let channel = NoiselessChannel::new();
    let fh = spec.run_fhdnn(&channel).unwrap();
    let cnn = spec.run_resnet(&channel).unwrap();
    assert!(
        mean_regret(&fh.history) < mean_regret(&cnn.history),
        "fhdnn regret {} vs resnet {}",
        mean_regret(&fh.history),
        mean_regret(&cnn.history)
    );
}
