//! Fleet-scale telemetry invariants: the sketch algebra the round
//! engines fold client observations through (merge associativity and
//! order-invariance, bounded quantile error), the O(1)-per-round event
//! volume `--fleet-telemetry` promises, and byte-identity of the
//! sketch-derived health records — and the `fhdnn watch` dashboard
//! rendered from them — across thread counts.

#[path = "proptest_util.rs"]
mod proptest_util;

use std::sync::Arc;

use fhdnn::channel::NoiselessChannel;
use fhdnn::federated::config::FlConfig;
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::federated::health::{HealthRecord, EXEMPLAR_K, FLEET_MAX_OUTLIERS};
use fhdnn::hdc::model::HdModel;
use fhdnn::telemetry::clock::ManualClock;
use fhdnn::telemetry::jsonl;
use fhdnn::telemetry::sink::MemorySink;
use fhdnn::telemetry::sketch::{DistinctEstimator, QuantileSketch, TopK};
use fhdnn::telemetry::Recorder;
use fhdnn::tensor::Tensor;
use fhdnn_cli::Dashboard;
use proptest_util::{check, Gen};

// ---------------------------------------------------------------------
// Sketch algebra
// ---------------------------------------------------------------------

#[test]
fn quantile_sketch_merge_is_associative_and_order_invariant() {
    check(0xf1ee_7001, 60, |case, g| {
        let n = 1 + g.usize_below(150);
        let values: Vec<f64> = (0..n).map(|_| f64::from(g.f32_in(1e-3, 1e6))).collect();
        let mut serial = QuantileSketch::new();
        for v in &values {
            serial.observe(*v);
        }
        // Shard the stream, then merge the shards in a random order.
        let shards = 1 + g.usize_below(5);
        let mut parts: Vec<QuantileSketch> = (0..shards).map(|_| QuantileSketch::new()).collect();
        for (i, v) in values.iter().enumerate() {
            parts[i % shards].observe(*v);
        }
        let mut merged = QuantileSketch::new();
        for &p in &g.permutation(shards) {
            merged.merge(&parts[p]);
        }
        assert_eq!(
            merged.encode(),
            serial.encode(),
            "case {case}: sharded merge must be byte-identical to serial"
        );
        // Associativity: ((a ⊔ b) ⊔ c) == (a ⊔ (b ⊔ c)).
        if shards >= 3 {
            let mut left = QuantileSketch::new();
            left.merge(&parts[0]);
            left.merge(&parts[1]);
            left.merge(&parts[2]);
            let mut bc = QuantileSketch::new();
            bc.merge(&parts[1]);
            bc.merge(&parts[2]);
            let mut right = QuantileSketch::new();
            right.merge(&parts[0]);
            right.merge(&bc);
            assert_eq!(left.encode(), right.encode(), "case {case}: associativity");
        }
    });
}

#[test]
fn quantile_sketch_respects_relative_error_bound() {
    check(0xf1ee_7002, 60, |case, g| {
        let n = 1 + g.usize_below(250);
        let mut values: Vec<f64> = (0..n).map(|_| f64::from(g.f32_in(1e-3, 1e4))).collect();
        let mut sk = QuantileSketch::new();
        for v in &values {
            sk.observe(*v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * (n - 1) as f64).round() as usize).min(n - 1);
            let exact = values[rank];
            let got = sk.quantile(q);
            assert!(
                (got - exact).abs() <= QuantileSketch::MAX_RELATIVE_ERROR * exact + 1e-9,
                "case {case}: q={q} got={got} exact={exact} (n={n})"
            );
        }
    });
}

#[test]
fn distinct_estimator_merge_equals_union() {
    check(0xf1ee_7003, 40, |case, g| {
        let mut a = DistinctEstimator::new();
        let mut b = DistinctEstimator::new();
        let mut union = DistinctEstimator::new();
        for _ in 0..g.usize_below(400) {
            let id = g.next_u64() % 500;
            a.insert(id);
            union.insert(id);
        }
        for _ in 0..g.usize_below(400) {
            let id = g.next_u64() % 500;
            b.insert(id);
            union.insert(id);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, union, "case {case}: merge is the register union");
        assert_eq!(ab, ba, "case {case}: merge commutes");
        // Idempotence: merging a sketch into itself changes nothing.
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a, "case {case}: merge is idempotent");
    });
}

#[test]
fn topk_sampler_is_insertion_order_invariant() {
    check(0xf1ee_7004, 40, |case, g| {
        let n = 1 + g.usize_below(60);
        let offers: Vec<(u64, f64)> = (0..n)
            .map(|i| (i as u64, f64::from(g.f32_in(0.0, 100.0))))
            .collect();
        let mut serial = TopK::new(EXEMPLAR_K);
        for (id, s) in &offers {
            serial.offer(*id, *s);
        }
        // Permuted insertion.
        let mut permuted = TopK::new(EXEMPLAR_K);
        for &p in &g.permutation(n) {
            permuted.offer(offers[p].0, offers[p].1);
        }
        assert_eq!(permuted.entries(), serial.entries(), "case {case}");
        // Sharded insertion + merge in permuted shard order.
        let shards = 1 + g.usize_below(4);
        let mut parts: Vec<TopK> = (0..shards).map(|_| TopK::new(EXEMPLAR_K)).collect();
        for (i, (id, s)) in offers.iter().enumerate() {
            parts[i % shards].offer(*id, *s);
        }
        let mut merged = TopK::new(EXEMPLAR_K);
        for &p in &g.permutation(shards) {
            merged.merge(&parts[p]);
        }
        assert_eq!(merged.entries(), serial.entries(), "case {case}: sharded");
    });
}

// ---------------------------------------------------------------------
// Engine-level invariants
// ---------------------------------------------------------------------

const DIM: usize = 256;
const CLASSES: usize = 4;

/// Pre-encoded, well-separated clients: each sample is a class prototype
/// in `{-1,1}^DIM` with 10% sign noise, so accuracy is high and stable
/// at every cohort size (no alert-rule flapping between runs).
fn clustered_clients(
    num: usize,
    per_client: usize,
    seed: u64,
) -> (Vec<HdClientData>, HdClientData) {
    let mut g = Gen::new(seed);
    let protos: Vec<Vec<f32>> = (0..CLASSES)
        .map(|_| {
            (0..DIM)
                .map(|_| if g.bool() { 1.0 } else { -1.0 })
                .collect()
        })
        .collect();
    let mut make = |count: usize| {
        let mut data = Vec::with_capacity(count * DIM);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let c = i % CLASSES;
            for &p in &protos[c] {
                let flip = g.usize_below(10) == 0;
                data.push(if flip { -p } else { p });
            }
            labels.push(c);
        }
        HdClientData {
            hypervectors: Tensor::from_vec(data, &[count, DIM]).unwrap(),
            labels,
        }
    };
    let clients = (0..num).map(|_| make(per_client)).collect();
    let test = make(40);
    (clients, test)
}

/// Runs `rounds` fleet-telemetry rounds and returns the serialized
/// event stream, one JSON line per event.
fn fleet_run(num_clients: usize, threads: usize, rounds: usize) -> Vec<String> {
    let (clients, test) = clustered_clients(num_clients, 4, 0xf1ee7);
    let config = FlConfig {
        num_clients,
        rounds,
        local_epochs: 1,
        batch_size: 4,
        client_fraction: 1.0,
        seed: 7,
        ..FlConfig::default()
    };
    let global = HdModel::new(CLASSES, DIM).unwrap();
    let mut fed = HdFederation::new(
        global,
        clients,
        config,
        HdTransport::Quantized { bitwidth: 8 },
    )
    .unwrap();
    let sink = Arc::new(MemorySink::new());
    let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(10)));
    fed.set_telemetry(tel.clone());
    fed.set_threads(threads);
    fed.set_fleet_telemetry(true);
    let clean = NoiselessChannel::new();
    for _ in 0..rounds {
        fed.run_round(&clean, &test).unwrap();
    }
    tel.flush();
    sink.events().iter().map(|e| e.to_json()).collect()
}

fn health_records(lines: &[String]) -> Vec<HealthRecord> {
    lines
        .iter()
        .filter(|l| l.contains("\"name\":\"health.round\""))
        .map(|l| {
            let v = jsonl::parse(l).unwrap();
            HealthRecord::from_event_fields(v.get("fields").unwrap()).unwrap()
        })
        .collect()
}

#[test]
fn fleet_event_volume_is_o1_in_cohort_size() {
    let rounds = 2;
    let small = fleet_run(100, 1, rounds);
    let large = fleet_run(1000, 1, rounds);
    // Alert events are already O(1) (bounded by the rule count) but may
    // legitimately differ between cohorts; everything else must be
    // EXACTLY as many events at 1000 clients as at 100.
    let volume = |lines: &[String]| {
        lines
            .iter()
            .filter(|l| !l.contains("\"name\":\"alert\""))
            .count()
    };
    assert_eq!(
        volume(&small),
        volume(&large),
        "fleet mode must emit the same event count per round at any cohort size"
    );
    // No per-client task rows survive in fleet mode.
    assert!(large.iter().all(|l| !l.contains("\"name\":\"trace.task\"")));

    // The health record itself stays O(1): same key count, bounded
    // outlier list, bounded exemplar string.
    let (rs, rl) = (health_records(&small), health_records(&large));
    assert_eq!(rs.len(), rounds);
    assert_eq!(rl.len(), rounds);
    let keys = |l: &str| l.matches("\":").count();
    let small_health: Vec<&String> = small
        .iter()
        .filter(|l| l.contains("\"name\":\"health.round\""))
        .collect();
    let large_health: Vec<&String> = large
        .iter()
        .filter(|l| l.contains("\"name\":\"health.round\""))
        .collect();
    for (s, l) in small_health.iter().zip(&large_health) {
        assert_eq!(
            keys(s),
            keys(l),
            "health records must have equal key counts"
        );
        assert!(l.len() < 2000, "health record blew up: {} bytes", l.len());
    }
    for r in rl.iter().chain(&rs) {
        assert!(r.outlier_clients.len() <= FLEET_MAX_OUTLIERS);
        assert!(r.exemplars.split('|').count() <= 3 * EXEMPLAR_K);
        assert!(r.cohort_clients > 0, "cohort estimate missing");
    }
    // The cohort estimator actually tracks the fleet size (HLL with 256
    // registers: ~6.5% standard error, allow 3 sigma).
    let est = rl.last().unwrap().cohort_clients as f64;
    assert!(
        (est - 1000.0).abs() < 0.2 * 1000.0,
        "cohort estimate {est} too far from 1000"
    );
    let est_small = rs.last().unwrap().cohort_clients as f64;
    assert!(
        (est_small - 100.0).abs() < 0.2 * 100.0,
        "cohort estimate {est_small} too far from 100"
    );
    // Self-metering counters are present in the stream.
    assert!(small
        .iter()
        .any(|l| l.contains("\"name\":\"telemetry.overhead.events\"")));
    assert!(small
        .iter()
        .any(|l| l.contains("\"name\":\"telemetry.overhead.jsonl_bytes\"")));
}

/// Zeroes one `"key":<digits>` field in a hand-rolled JSON line (the
/// raw memory watermarks measure the process's real heap — see
/// tests/telemetry.rs).
fn zero_field(line: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    match line.find(&pat) {
        Some(i) => {
            let start = i + pat.len();
            let end = line[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map(|o| start + o)
                .unwrap_or(line.len());
            format!("{}0{}", &line[..start], &line[end..])
        }
        None => line.to_string(),
    }
}

/// The stream's `health.round` lines with the watermark fields zeroed —
/// everything else in them (sketch quantiles, exemplars, cohort
/// estimate included) must be byte-stable.
fn canonical_health_lines(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| l.contains("\"name\":\"health.round\""))
        .map(|l| {
            let mut l = l.clone();
            for key in ["mem_peak_bytes", "mem_allocs", "mem_bytes_per_client"] {
                l = zero_field(&l, key);
            }
            l
        })
        .collect()
}

#[test]
fn sketch_derived_health_is_byte_identical_across_thread_counts() {
    let baseline = canonical_health_lines(&fleet_run(24, 1, 3));
    assert_eq!(baseline.len(), 3);
    assert!(baseline[0].contains("\"div_p50\""), "{}", baseline[0]);
    for threads in [2, 8] {
        let other = canonical_health_lines(&fleet_run(24, threads, 3));
        assert_eq!(
            baseline, other,
            "sketch-derived health records moved at threads={threads}"
        );
    }
    // The watch dashboard rendered from those records — percentile
    // bands, exemplar table and all — is equally thread-invariant.
    let render = |lines: &[String]| Dashboard::from_jsonl_str(&lines.join("\n")).render();
    let reference = render(&baseline);
    assert!(reference.contains("fleet"), "{reference}");
    assert!(reference.contains("exemplars"), "{reference}");
    for threads in [2, 8] {
        let other = canonical_health_lines(&fleet_run(24, threads, 3));
        assert_eq!(
            reference,
            render(&other),
            "watch render moved at threads={threads}"
        );
    }
    // And so is the Prometheus exposition.
    let prom = Dashboard::from_jsonl_str(&baseline.join("\n")).prometheus();
    assert!(prom.contains("fhdnn_health_divergence_quantile"), "{prom}");
    assert_eq!(
        prom,
        Dashboard::from_jsonl_str(&canonical_health_lines(&fleet_run(24, 2, 3)).join("\n"))
            .prometheus()
    );
}

#[test]
fn fleet_mode_changes_no_results() {
    let run = |fleet: bool| {
        let (clients, test) = clustered_clients(12, 4, 0xf1ee7);
        let config = FlConfig {
            num_clients: 12,
            rounds: 3,
            local_epochs: 1,
            batch_size: 4,
            client_fraction: 1.0,
            seed: 7,
            ..FlConfig::default()
        };
        let global = HdModel::new(CLASSES, DIM).unwrap();
        let mut fed = HdFederation::new(
            global,
            clients,
            config,
            HdTransport::Quantized { bitwidth: 8 },
        )
        .unwrap();
        let sink = Arc::new(MemorySink::new());
        let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(10)));
        fed.set_telemetry(tel);
        fed.set_fleet_telemetry(fleet);
        let clean = NoiselessChannel::new();
        let mut accs = Vec::new();
        for _ in 0..3 {
            accs.push(fed.run_round(&clean, &test).unwrap().test_accuracy);
        }
        (accs, sink.events().len())
    };
    let (verbose_accs, verbose_events) = run(false);
    let (fleet_accs, fleet_events) = run(true);
    assert_eq!(verbose_accs, fleet_accs, "fleet telemetry changed results");
    assert!(
        fleet_events < verbose_events,
        "fleet mode must emit fewer events ({fleet_events} vs {verbose_events})"
    );
}
