//! End-to-end model-health flight recorder: both federation engines emit
//! `health.round` records, severe channel damage trips the alert engine,
//! clean runs stay quiet, and the `fhdnn watch` dashboard is a
//! byte-deterministic function of the recorded stream (modulo the raw
//! memory watermarks, which measure the process's real heap).

use std::sync::Arc;

use fhdnn::channel::bit_error::BitErrorChannel;
use fhdnn::channel::NoiselessChannel;
use fhdnn::datasets::features::FeatureSpec;
use fhdnn::datasets::image::SynthSpec;
use fhdnn::datasets::partition::Partition;
use fhdnn::federated::config::FlConfig;
use fhdnn::federated::fedavg::{carve_clients, CnnFederation, LocalSgdConfig};
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::model::HdModel;
use fhdnn::nn::models::small_cnn;
use fhdnn::telemetry::clock::ManualClock;
use fhdnn::telemetry::sink::MemorySink;
use fhdnn::telemetry::{Recorder, Telemetry};
use fhdnn::tensor::Tensor;
use fhdnn_cli::Dashboard;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 1024;
const NUM_CLIENTS: usize = 4;
const CLASSES: usize = 5;

/// Pre-encoded clients and test set, mirroring the telemetry fixtures.
fn build_federation(seed: u64, transport: HdTransport) -> (HdFederation, HdClientData) {
    let spec = FeatureSpec {
        num_classes: CLASSES,
        width: 40,
        noise_std: 0.6,
        class_seed: 11,
    };
    let train = spec.generate(NUM_CLIENTS * 25, seed).unwrap();
    let test = spec.generate(60, seed + 1).unwrap();
    let enc = RandomProjectionEncoder::new(DIM, 40, 3).unwrap();
    let h_train = enc.encode_batch(&train.features).unwrap();
    let h_test = enc.encode_batch(&test.features).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = Partition::Iid
        .split(&train.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients: Vec<HdClientData> = parts
        .iter()
        .map(|idx| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for &i in idx {
                data.extend_from_slice(h_train.row(i).unwrap());
                labels.push(train.labels[i]);
            }
            HdClientData {
                hypervectors: Tensor::from_vec(data, &[idx.len(), DIM]).unwrap(),
                labels,
            }
        })
        .collect();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: 4,
        local_epochs: 1,
        batch_size: 10,
        client_fraction: 1.0,
        seed: 7,
        ..FlConfig::default()
    };
    let global = HdModel::new(CLASSES, DIM).unwrap();
    let fed = HdFederation::new(global, clients, config, transport).unwrap();
    let test_data = HdClientData {
        hypervectors: h_test,
        labels: test.labels,
    };
    (fed, test_data)
}

/// An enabled recorder over a memory sink with a deterministic clock,
/// plus a handle to read the captured events back.
fn memory_recorder() -> (Telemetry, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(10)));
    (tel, sink)
}

fn stream_of(sink: &MemorySink) -> String {
    sink.events()
        .iter()
        .map(|e| e.to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Trains clean for a few rounds, then hits a severe binary symmetric
/// channel on the *float* transport — where one flip in an f32 exponent
/// is catastrophic (the paper's §3.5.2 example). The accuracy collapse
/// must trip the alert engine, and every round must leave a health
/// record. (The quantized transport survives even BER 0.5 on this
/// workload — the paper's robustness claim — so it cannot drive this
/// test.)
fn impaired_stream(seed: u64) -> String {
    let (mut fed, test) = build_federation(seed, HdTransport::Float);
    let (tel, sink) = memory_recorder();
    fed.set_telemetry(tel.clone());
    let clean = NoiselessChannel::new();
    for _ in 0..4 {
        fed.run_round(&clean, &test).unwrap();
    }
    let severe = BitErrorChannel::new(0.05).unwrap();
    for _ in 0..4 {
        fed.run_round(&severe, &test).unwrap();
    }
    tel.flush();
    stream_of(&sink)
}

#[test]
fn severe_bit_errors_fire_an_alert() {
    let stream = impaired_stream(0);
    let dash = Dashboard::from_jsonl_str(&stream);
    assert_eq!(dash.records().len(), 8, "one health record per round");
    assert!(dash.records().iter().all(|r| r.engine == "fedhd"));
    // The damaged rounds carry channel attribution…
    let damaged: u64 = dash.records().iter().map(|r| r.bits_flipped).sum();
    assert!(damaged > 0, "severe BSC must flip bits");
    assert_eq!(dash.records()[0].bits_flipped, 0, "clean rounds stay clean");
    // …and the collapse trips the engine: saturation or accuracy-drop.
    assert!(
        dash.alerts()
            .iter()
            .any(|a| a.rule == "accuracy_drop" || a.rule == "saturation"),
        "expected a saturation or accuracy-drop alert, got {:?}",
        dash.alerts()
    );
}

#[test]
fn clean_run_fires_no_alerts() {
    let (mut fed, test) = build_federation(0, HdTransport::Quantized { bitwidth: 8 });
    let (tel, sink) = memory_recorder();
    fed.set_telemetry(tel.clone());
    fed.run(&NoiselessChannel::new(), &test, "health-clean")
        .unwrap();
    tel.flush();
    let dash = Dashboard::from_jsonl_str(&stream_of(&sink));
    assert_eq!(dash.records().len(), 4);
    assert!(
        dash.alerts().is_empty(),
        "clean run must stay quiet, got {:?}",
        dash.alerts()
    );
    let last = &dash.records()[3];
    assert!(last.test_accuracy > 0.5, "accuracy {}", last.test_accuracy);
    assert!(last.norm_mean > 0.0);
    assert!(last.cosine_margin > 0.0);
    assert_eq!(
        last.bits_flipped + last.dims_erased + last.packets_dropped,
        0
    );
}

#[test]
fn fedavg_emits_health_records_too() {
    let spec = SynthSpec::mnist_like();
    let pool = spec.generate(NUM_CLIENTS * 20, 0).unwrap();
    let test = spec.generate(60, 1).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let parts = Partition::Iid
        .split(&pool.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients = carve_clients(&pool, &parts).unwrap();
    let net = small_cnn(1, 16, 10, &mut rng).unwrap();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: 2,
        local_epochs: 1,
        batch_size: 10,
        client_fraction: 0.5,
        seed: 7,
        ..FlConfig::default()
    };
    let mut fed = CnnFederation::new(net, clients, config, LocalSgdConfig::default()).unwrap();
    let (tel, sink) = memory_recorder();
    fed.set_telemetry(tel.clone());
    fed.run(&NoiselessChannel::new(), &test, "health-fedavg")
        .unwrap();
    tel.flush();
    let dash = Dashboard::from_jsonl_str(&stream_of(&sink));
    assert_eq!(dash.records().len(), 2);
    assert!(dash.records().iter().all(|r| r.engine == "fedavg"));
    assert!(dash.records().iter().all(|r| r.participants == 2));
    assert!(dash.records()[1].norm_mean > 0.0);
}

/// Zeroes one `"key":<digits>` field in a hand-rolled JSON line.
fn zero_field(line: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    match line.find(&pat) {
        Some(i) => {
            let start = i + pat.len();
            let end = line[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map(|o| start + o)
                .unwrap_or(line.len());
            format!("{}0{}", &line[..start], &line[end..])
        }
        None => line.to_string(),
    }
}

/// Raw memory watermarks measure the process's real heap, which depends
/// on what earlier runs and concurrent tests left live (see
/// tests/telemetry.rs), so cross-recording comparison drops `mem.*`
/// lines and zeroes the watermark fields of health records. The
/// `telemetry.overhead.jsonl_bytes` self-meter counts serialized bytes —
/// whose digit widths include those watermarks — so it drops too. The
/// event serializer emits sorted keys, so plain text surgery is exact.
fn canonical(stream: &str) -> String {
    stream
        .lines()
        .filter(|l| !l.contains("\"name\":\"mem."))
        .filter(|l| !l.contains("\"name\":\"telemetry.overhead.jsonl_bytes\""))
        .map(|l| {
            let mut l = l.to_string();
            for key in ["mem_peak_bytes", "mem_allocs", "mem_bytes_per_client"] {
                l = zero_field(&l, key);
            }
            l
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn dashboard_replay_is_byte_deterministic() {
    // Two independently recorded same-seed runs produce the same stream
    // (modulo the raw memory watermarks), and replaying one stream twice
    // renders the same bytes — the property `fhdnn watch --from` relies
    // on.
    let a = impaired_stream(3);
    let b = impaired_stream(3);
    let (ca, cb) = (canonical(&a), canonical(&b));
    assert_eq!(ca, cb, "same-seed streams diverged");
    // Replaying one recording twice is byte-deterministic, memory rows
    // and all.
    let render_a = Dashboard::from_jsonl_str(&a).render();
    assert_eq!(
        render_a,
        Dashboard::from_jsonl_str(&a).render(),
        "replayed dashboards diverged"
    );
    assert!(render_a.contains("fhdnn watch — fedhd"));
    assert!(
        render_a.contains("mem peak"),
        "instrumented replay renders the memory rows"
    );
    // Across recordings, the canonicalized dashboards agree.
    assert_eq!(
        Dashboard::from_jsonl_str(&ca).render(),
        Dashboard::from_jsonl_str(&cb).render()
    );
    // The Prometheus export is equally deterministic.
    assert_eq!(
        Dashboard::from_jsonl_str(&a).prometheus(),
        Dashboard::from_jsonl_str(&a).prometheus()
    );
    assert_eq!(
        Dashboard::from_jsonl_str(&ca).prometheus(),
        Dashboard::from_jsonl_str(&cb).prometheus()
    );
}
