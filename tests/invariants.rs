//! Property suite over the transmission-facing HD primitives, driven by
//! the zero-dependency generator in `proptest_util.rs`.
//!
//! Three invariant families from the paper are pinned across hundreds of
//! random cases each:
//!
//! - **Quantizer (§3.5.2)** — the AGC gain clips every transmitted word
//!   into the `B`-bit range, and the round-trip error of each parameter
//!   is below one quantization step (`max|c_k| / (2^{B-1}-1)`).
//! - **Bundling (Eq. 1)** — client order is irrelevant: permuted and
//!   re-associated bundles are bit-identical, for packed `i32` counters
//!   and for float models with integer-valued prototypes (exact in IEEE
//!   arithmetic below 2^24). This is the algebra the fixed-order
//!   parallel reduction in `fhdnn-federated` relies on.
//! - **Masking (Figure 5)** — partial information removes exactly the
//!   requested dimensions, consistently across classes, leaves the rest
//!   untouched, and retains exactly the kept fraction of dot-product
//!   energy.

#[path = "proptest_util.rs"]
mod proptest_util;

use fhdnn::hdc::masking::{mask_model_dimensions, similarity_retention};
use fhdnn::hdc::model::HdModel;
use fhdnn::hdc::packed::PackedHdModel;
use fhdnn::hdc::quantizer::{dequantize, quantize};
use fhdnn::tensor::Tensor;
use proptest_util::{check, Gen};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_model(g: &mut Gen) -> HdModel {
    let classes = 1 + g.usize_below(8);
    let dim = 1 + g.usize_below(300);
    let scale = g.f32_in(0.1, 100.0);
    let values: Vec<f32> = (0..classes * dim)
        .map(|_| {
            // Exact zeros keep the all-zero-row gain path in play.
            if g.usize_below(20) == 0 {
                0.0
            } else {
                g.f32_in(-scale, scale)
            }
        })
        .collect();
    HdModel::from_prototypes(Tensor::from_vec(values, &[classes, dim]).unwrap()).unwrap()
}

#[test]
fn quantizer_clips_and_round_trips_within_one_step() {
    check(0xABC1, 150, |case, g| {
        let model = random_model(g);
        let bitwidth = [4u32, 8, 16][g.usize_below(3)];
        let q = quantize(&model, bitwidth).unwrap();
        let max_word = q.max_word();
        assert!(
            q.words.iter().all(|w| w.abs() <= max_word),
            "case {case}: word outside the {bitwidth}-bit AGC range"
        );
        let back = dequantize(&q).unwrap();
        for class in 0..model.num_classes() {
            let row = model.prototypes().row(class).unwrap();
            let back_row = back.prototypes().row(class).unwrap();
            let max_abs = row.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
            if max_abs == 0.0 {
                assert!(
                    back_row.iter().all(|&v| v == 0.0),
                    "case {case}: zero row must survive the round trip as zeros"
                );
                continue;
            }
            // Truncation loses strictly less than one word, i.e. less
            // than one quantization step `max|c_k| / max_word` after the
            // receiver's rescale; the slack covers f32 gain rounding.
            let step = max_abs / max_word as f32;
            let bound = step * 1.001 + 1e-6;
            for (j, (&v, &b)) in row.iter().zip(back_row.iter()).enumerate() {
                assert!(
                    (v - b).abs() <= bound,
                    "case {case}: class {class} dim {j}: |{v} - {b}| > step {step} at B={bitwidth}"
                );
            }
        }
    });
}

#[test]
fn packed_bundling_is_order_and_association_free() {
    check(0xABC2, 100, |case, g| {
        let classes = 1 + g.usize_below(6);
        let dim = 1 + g.usize_below(200);
        let k = 2 + g.usize_below(6);
        let models: Vec<PackedHdModel> = (0..k)
            .map(|_| {
                let counts: Vec<i32> = (0..classes * dim).map(|_| g.i32_in(-100, 100)).collect();
                PackedHdModel::from_counts(counts, classes, dim).unwrap()
            })
            .collect();
        let baseline = PackedHdModel::bundle(&models).unwrap();

        // Commutativity: any client order lands on the same counters.
        let permuted: Vec<PackedHdModel> = g
            .permutation(k)
            .into_iter()
            .map(|i| models[i].clone())
            .collect();
        let shuffled = PackedHdModel::bundle(&permuted).unwrap();
        assert_eq!(
            baseline.protos(),
            shuffled.protos(),
            "case {case}: order changed the bundle"
        );

        // Associativity: bundling a prefix first, then the rest, is the
        // same as one flat bundle.
        let split = 1 + g.usize_below(k - 1);
        let prefix = PackedHdModel::bundle(&models[..split]).unwrap();
        let mut regrouped = vec![prefix];
        regrouped.extend(models[split..].iter().cloned());
        let nested = PackedHdModel::bundle(&regrouped).unwrap();
        assert_eq!(
            baseline.protos(),
            nested.protos(),
            "case {case}: regrouping changed the bundle"
        );
    });
}

#[test]
fn float_bundling_is_permutation_invariant_on_integer_prototypes() {
    check(0xABC3, 100, |case, g| {
        let classes = 1 + g.usize_below(6);
        let dim = 1 + g.usize_below(200);
        let k = 2 + g.usize_below(6);
        // Integer-valued f32 prototypes: sums stay far below 2^24, so
        // IEEE addition is exact and reordering must be bit-identical —
        // exactly the regime of the one-shot counters clients upload.
        let models: Vec<HdModel> = (0..k)
            .map(|_| {
                let values: Vec<f32> = (0..classes * dim)
                    .map(|_| g.i32_in(-64, 64) as f32)
                    .collect();
                HdModel::from_prototypes(Tensor::from_vec(values, &[classes, dim]).unwrap())
                    .unwrap()
            })
            .collect();
        let baseline = HdModel::bundle(&models).unwrap();
        let permuted: Vec<HdModel> = g
            .permutation(k)
            .into_iter()
            .map(|i| models[i].clone())
            .collect();
        let shuffled = HdModel::bundle(&permuted).unwrap();
        assert_eq!(
            baseline.prototypes().as_slice(),
            shuffled.prototypes().as_slice(),
            "case {case}: client order changed the float bundle"
        );
    });
}

#[test]
fn masking_removes_exactly_the_requested_dimensions() {
    check(0xABC4, 100, |case, g| {
        let classes = 1 + g.usize_below(6);
        let dim = 2 + g.usize_below(400);
        // Strictly nonzero prototypes so a zero after masking is
        // unambiguously a removed dimension.
        let values: Vec<f32> = (0..classes * dim)
            .map(|_| {
                let v = g.f32_in(0.1, 5.0);
                if g.bool() {
                    v
                } else {
                    -v
                }
            })
            .collect();
        let model =
            HdModel::from_prototypes(Tensor::from_vec(values, &[classes, dim]).unwrap()).unwrap();
        let fraction = g.f32_in(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(g.next_u64());
        let masked = mask_model_dimensions(&model, fraction, &mut rng).unwrap();

        let expected_removed = (fraction * dim as f32).round() as usize;
        let removed_dims: Vec<usize> = (0..dim)
            .filter(|&j| masked.prototypes().row(0).unwrap()[j] == 0.0)
            .collect();
        assert_eq!(
            removed_dims.len(),
            expected_removed,
            "case {case}: fraction {fraction} of {dim} dims"
        );
        for class in 0..classes {
            let orig = model.prototypes().row(class).unwrap();
            let row = masked.prototypes().row(class).unwrap();
            for j in 0..dim {
                if removed_dims.binary_search(&j).is_ok() {
                    // Packet loss hits the same dimensions in every class.
                    assert_eq!(row[j], 0.0, "case {case}: class {class} dim {j}");
                } else {
                    assert_eq!(
                        row[j], orig[j],
                        "case {case}: class {class} dim {j} altered"
                    );
                }
            }
        }
    });
}

#[test]
fn retention_is_the_kept_fraction_of_dot_product_energy() {
    check(0xABC5, 100, |case, g| {
        let classes = 1 + g.usize_below(5);
        let dim = 2 + g.usize_below(300);
        let values: Vec<f32> = (0..classes * dim).map(|_| g.f32_in(-3.0, 3.0)).collect();
        let model =
            HdModel::from_prototypes(Tensor::from_vec(values, &[classes, dim]).unwrap()).unwrap();
        let fraction = g.f32_in(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(g.next_u64());
        let masked = mask_model_dimensions(&model, fraction, &mut rng).unwrap();
        for class in 0..classes {
            let r = similarity_retention(&model, &masked, class).unwrap();
            assert!(
                (-1e-4..=1.0 + 1e-4).contains(&r),
                "case {case}: retention {r} outside [0, 1]"
            );
            // Independent computation: the energy of the surviving dims
            // over the total — `⟨c_masked, c⟩ / ⟨c, c⟩` with the masked
            // entries contributing nothing.
            let orig = model.prototypes().row(class).unwrap();
            let kept = masked.prototypes().row(class).unwrap();
            let total: f32 = orig.iter().map(|v| v * v).sum();
            let surviving: f32 = orig
                .iter()
                .zip(kept.iter())
                .filter(|(_, &m)| m != 0.0)
                .map(|(&o, _)| o * o)
                .sum();
            if total > 0.0 {
                assert!(
                    (r - surviving / total).abs() <= 1e-4,
                    "case {case}: class {class}: retention {r} vs energy ratio {}",
                    surviving / total
                );
            }
        }
        // Removing nothing keeps everything.
        let untouched = mask_model_dimensions(&model, 0.0, &mut rng).unwrap();
        assert_eq!(
            untouched, model,
            "case {case}: fraction 0 must be the identity"
        );
    });
}
