//! Differential parity: the bit-packed HD kernels must agree *exactly*
//! — not approximately — with the transparent `i32` reference learner
//! in `fhdnn::hdc::packed::reference`.
//!
//! Every kernel the federated loop leans on is pinned here: sign
//! encoding (including IEEE `-0.0`), packed dot products, one-shot
//! bundling sums, mispredict-driven refinement trajectories, argmax
//! tie-breaking, and model bundling — across word-aligned and odd
//! dimensions, class counts, and seeds. One test asserts the
//! acceptance-gate speedup: packed similarity ≥ 4× faster than the
//! `i32` path at d = 10 000 (tests compile at `opt-level = 2`).
//!
//! Two suites lift the parity bar from kernels to the whole system: a
//! full fedhd campaign under `HdExecution::Packed` must be bit-identical
//! to the `Reference` oracle (history, model bits, health records) at
//! thread counts 1/2/8, and every SIMD-dispatched kernel must agree
//! exactly with its `simd::scalar` mirror on fuzzed inputs — both on the
//! detected backend and under the `FHDNN_NO_SIMD=1` CI leg.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::datasets::features::FeatureSpec;
use fhdnn::datasets::partition::Partition;
use fhdnn::federated::config::{FlConfig, HdExecution};
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::federated::metrics::RunHistory;
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::model::HdModel;
use fhdnn::hdc::packed::reference::{dot_i32, ReferenceHdModel};
use fhdnn::hdc::packed::{
    dot_packed, hamming, pack_signs, pack_signs_i32, PackedBatch, PackedHdModel,
};
use fhdnn::hdc::simd;
use fhdnn::telemetry::clock::ManualClock;
use fhdnn::telemetry::event::{Event, FieldValue};
use fhdnn::telemetry::sink::MemorySink;
use fhdnn::telemetry::Recorder;
use fhdnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[path = "proptest_util.rs"]
mod proptest_util;

/// Word-aligned, one-off-word-aligned, and odd dimensionalities; the
/// pad-bit handling only matters off 64-bit boundaries.
const DIMS: &[usize] = &[63, 64, 65, 1000, 1001, 2048];

/// Random values spanning negatives, positives, exact zeros and `-0.0`,
/// since the packed encoding must agree with `sign_i32` on all of them.
fn random_values(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| match rng.gen_range(0..10) {
            0 => 0.0,
            1 => -0.0,
            _ => rng.gen_range(-1.0f32..1.0),
        })
        .collect()
}

/// A random ±1 vector in `i32` form.
fn random_bipolar(rng: &mut StdRng, n: usize) -> Vec<i32> {
    (0..n)
        .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
        .collect()
}

#[test]
fn sign_encoding_round_trips_through_packing() {
    for &dim in DIMS {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let values = random_values(&mut rng, dim);
            let batch = PackedBatch::from_rows(&values, 1, dim);
            let unpacked = batch.unpack_row(0);
            for (i, (&v, &s)) in values.iter().zip(unpacked.iter()).enumerate() {
                let expected = if v >= 0.0 { 1 } else { -1 };
                assert_eq!(s, expected, "dim {dim} seed {seed} index {i} value {v}");
            }
            // Free-function packing, batch packing and re-packing the
            // unpacked signs all land on the same words (pad bits zero).
            assert_eq!(pack_signs(&values), batch.row(0));
            assert_eq!(pack_signs_i32(&unpacked), batch.row(0));
        }
    }
}

#[test]
fn packed_dot_matches_i32_dot() {
    for &dim in DIMS {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let a = random_bipolar(&mut rng, dim);
            let b = random_bipolar(&mut rng, dim);
            let pa = pack_signs_i32(&a);
            let pb = pack_signs_i32(&b);
            assert_eq!(
                dot_packed(&pa, &pb, dim),
                dot_i32(&a, &b),
                "dim {dim} seed {seed}"
            );
            // Self-similarity is exactly dim; hamming to self is zero.
            assert_eq!(dot_packed(&pa, &pa, dim), dim as i64);
            assert_eq!(hamming(&pa, &pa), 0);
        }
    }
}

/// Builds the same random labelled batch for both learners: a packed
/// batch plus the identical ±1 rows in `i32` form.
fn labelled_batch(
    rng: &mut StdRng,
    samples: usize,
    dim: usize,
    classes: usize,
) -> (PackedBatch, Vec<Vec<i32>>, Vec<usize>) {
    let values: Vec<f32> = random_values(rng, samples * dim);
    let batch = PackedBatch::from_rows(&values, samples, dim);
    let rows: Vec<Vec<i32>> = (0..samples).map(|r| batch.unpack_row(r)).collect();
    let labels: Vec<usize> = (0..samples).map(|_| rng.gen_range(0..classes)).collect();
    (batch, rows, labels)
}

#[test]
fn one_shot_bundling_sums_agree() {
    for &dim in DIMS {
        for &classes in &[2usize, 5, 10] {
            let mut rng = StdRng::seed_from_u64(3000 + dim as u64 + classes as u64);
            let (batch, rows, labels) = labelled_batch(&mut rng, 40, dim, classes);

            let mut packed = PackedHdModel::new(classes, dim).unwrap();
            packed.one_shot_train(&batch, &labels).unwrap();

            let mut reference = ReferenceHdModel::new(classes, dim).unwrap();
            reference.one_shot_train(&rows, &labels);

            assert_eq!(
                packed.protos(),
                reference.protos.as_slice(),
                "dim {dim} classes {classes}"
            );
        }
    }
}

#[test]
fn refinement_trajectories_agree() {
    for &dim in &[65usize, 1000] {
        for &classes in &[2usize, 5, 10] {
            let mut rng = StdRng::seed_from_u64(4000 + dim as u64 + classes as u64);
            let (batch, rows, labels) = labelled_batch(&mut rng, 50, dim, classes);

            let mut packed = PackedHdModel::new(classes, dim).unwrap();
            packed.one_shot_train(&batch, &labels).unwrap();
            let mut reference = ReferenceHdModel::new(classes, dim).unwrap();
            reference.one_shot_train(&rows, &labels);

            for epoch in 0..4 {
                let packed_updates = packed.refine_epoch(&batch, &labels).unwrap();
                let reference_updates = reference.refine_epoch(&rows, &labels);
                assert_eq!(
                    packed_updates, reference_updates,
                    "dim {dim} classes {classes} epoch {epoch}"
                );
                assert_eq!(
                    packed.protos(),
                    reference.protos.as_slice(),
                    "dim {dim} classes {classes} epoch {epoch}"
                );
            }

            // Identical counters must produce identical predictions —
            // both sides break similarity ties on the first maximum.
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(
                    packed.predict_packed(batch.row(r)),
                    reference.predict(row),
                    "dim {dim} classes {classes} sample {r}"
                );
            }
        }
    }
}

#[test]
fn similarities_and_argmax_agree_on_arbitrary_counters() {
    for &dim in DIMS {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(5000 + seed);
            let classes = 10;
            // Arbitrary (not training-reachable) counter states, with
            // zeros so the sign(0) = +1 convention is exercised.
            let counts: Vec<i32> = (0..classes * dim)
                .map(|_| rng.gen_range(-50..=50))
                .collect();
            let packed = PackedHdModel::from_counts(counts.clone(), classes, dim).unwrap();
            let reference = ReferenceHdModel {
                protos: counts,
                num_classes: classes,
                dim,
            };
            for _ in 0..20 {
                let query = random_bipolar(&mut rng, dim);
                let packed_query = pack_signs_i32(&query);
                let sims = packed.similarities_packed(&packed_query);
                for (c, &sim) in sims.iter().enumerate() {
                    assert_eq!(sim, reference.similarity(c, &query), "dim {dim} class {c}");
                }
                assert_eq!(
                    packed.predict_packed(&packed_query),
                    reference.predict(&query),
                    "dim {dim} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn bundle_is_elementwise_counter_sum() {
    let dim = 129;
    let classes = 5;
    let mut rng = StdRng::seed_from_u64(6000);
    let models: Vec<PackedHdModel> = (0..6)
        .map(|_| {
            let counts: Vec<i32> = (0..classes * dim)
                .map(|_| rng.gen_range(-20..=20))
                .collect();
            PackedHdModel::from_counts(counts, classes, dim).unwrap()
        })
        .collect();
    let bundled = PackedHdModel::bundle(&models).unwrap();
    let expected: Vec<i32> = (0..classes * dim)
        .map(|i| models.iter().map(|m| m.protos()[i]).sum())
        .collect();
    assert_eq!(bundled.protos(), expected.as_slice());
    // And the bundled model's packed rows reflect the summed signs.
    for c in 0..classes {
        assert_eq!(
            bundled.packed_row(c),
            &pack_signs_i32(&expected[c * dim..(c + 1) * dim])[..]
        );
    }
}

/// Acceptance gate: at d = 10 000 the popcount path must beat the
/// `i32` reference by ≥ 4× on prediction. The expected margin is far
/// larger (~64 dims per word vs one multiply-add per dim), so 4× holds
/// comfortably even on loaded CI machines.
#[test]
fn packed_similarity_is_at_least_4x_faster_at_d10000() {
    const DIM: usize = 10_000;
    const CLASSES: usize = 10;
    const QUERIES: usize = 64;
    const REPS: usize = 8;

    let mut rng = StdRng::seed_from_u64(7000);
    let counts: Vec<i32> = (0..CLASSES * DIM)
        .map(|_| rng.gen_range(-50..=50))
        .collect();
    let packed = PackedHdModel::from_counts(counts.clone(), CLASSES, DIM).unwrap();
    let reference = ReferenceHdModel {
        protos: counts,
        num_classes: CLASSES,
        dim: DIM,
    };
    let queries: Vec<Vec<i32>> = (0..QUERIES)
        .map(|_| random_bipolar(&mut rng, DIM))
        .collect();
    let packed_queries: Vec<Vec<u64>> = queries.iter().map(|q| pack_signs_i32(q)).collect();

    // Both paths must agree before being timed.
    for (q, pq) in queries.iter().zip(packed_queries.iter()) {
        assert_eq!(packed.predict_packed(pq), reference.predict(q));
    }

    let timed = |f: &mut dyn FnMut() -> usize| {
        // Warm-up pass, then best-of-REPS to shrug off scheduler noise.
        black_box(f());
        (0..REPS)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .min()
            .unwrap()
    };

    let reference_time = timed(&mut || queries.iter().map(|q| reference.predict(q)).sum::<usize>());
    let packed_time = timed(&mut || {
        packed_queries
            .iter()
            .map(|pq| packed.predict_packed(pq))
            .sum::<usize>()
    });

    assert!(
        packed_time * 4 <= reference_time,
        "packed {packed_time:?} vs reference {reference_time:?}: below 4x"
    );
}

// ---------------------------------------------------------------------
// Campaign-level parity: a full fedhd run under `HdExecution::Packed`
// must be bit-identical to the `Reference` oracle — same per-round
// accuracy and byte accounting, same final model bits, same health
// records — at every thread count, with stragglers and a lossy packet
// channel in the mix so both engines consume their RNG streams in full.
// ---------------------------------------------------------------------

/// One instrumented binary-transport campaign. Returns the run history
/// (whose `PartialEq` already excludes wall-clock and heap watermarks),
/// the final global-model bits, and the captured `health.round` events
/// with their environment-dependent `mem_*` fields zeroed.
fn binary_campaign(execution: HdExecution, threads: usize) -> (RunHistory, Vec<u32>, Vec<Event>) {
    const DIM: usize = 1024;
    const NUM_CLIENTS: usize = 4;
    const CLASSES: usize = 5;
    let spec = FeatureSpec {
        num_classes: CLASSES,
        width: 40,
        noise_std: 0.6,
        class_seed: 11,
    };
    let train = spec.generate(NUM_CLIENTS * 25, 0).unwrap();
    let test = spec.generate(60, 1).unwrap();
    let enc = RandomProjectionEncoder::new(DIM, 40, 3).unwrap();
    let h_train = enc.encode_batch(&train.features).unwrap();
    let h_test = enc.encode_batch(&test.features).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let parts = Partition::Iid
        .split(&train.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients: Vec<HdClientData> = parts
        .iter()
        .map(|idx| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for &i in idx {
                data.extend_from_slice(h_train.row(i).unwrap());
                labels.push(train.labels[i]);
            }
            HdClientData {
                hypervectors: Tensor::from_vec(data, &[idx.len(), DIM]).unwrap(),
                labels,
            }
        })
        .collect();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: 3,
        local_epochs: 2,
        batch_size: 10,
        client_fraction: 0.5,
        seed: 7,
        execution,
    };
    let global = HdModel::new(CLASSES, DIM).unwrap();
    let mut fed = HdFederation::new(global, clients, config, HdTransport::Binary).unwrap();
    fed.set_threads(threads);
    fed.set_straggler_prob(0.25).unwrap();
    let sink = Arc::new(MemorySink::new());
    let tel = Recorder::with_sink_and_clock(sink.clone(), Arc::new(ManualClock::new(10)));
    fed.set_telemetry(tel.clone());
    let channel = PacketLossChannel::new(0.2, 256).unwrap();
    let test_data = HdClientData {
        hypervectors: h_test,
        labels: test.labels,
    };
    let history = fed.run(&channel, &test_data, "parity").unwrap();
    tel.flush();
    let model_bits: Vec<u32> = fed
        .global()
        .prototypes()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let health: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "health.round")
        .map(|mut e| {
            // Heap watermarks measure the process's real allocator state,
            // which legitimately differs between the two engines (and
            // between runs); everything else must match bit for bit.
            for key in ["mem_peak_bytes", "mem_allocs", "mem_bytes_per_client"] {
                if let Some(v) = e.fields.get_mut(key) {
                    *v = FieldValue::U64(0);
                }
            }
            e
        })
        .collect();
    (history, model_bits, health)
}

#[test]
fn fedhd_campaign_packed_matches_reference_at_every_thread_count() {
    let oracle = binary_campaign(HdExecution::Reference, 1);
    assert_eq!(oracle.0.rounds.len(), 3, "campaign must complete 3 rounds");
    assert_eq!(oracle.2.len(), 3, "one health record per round");
    assert!(
        oracle.0.rounds.iter().all(|r| r.bytes_per_client == 640),
        "binary uplink must cost classes x dim/8 bytes"
    );
    for threads in [1usize, 2, 8] {
        for execution in [HdExecution::Reference, HdExecution::Packed] {
            let run = binary_campaign(execution, threads);
            let tag = format!("{} at {threads} threads", execution.name());
            assert_eq!(oracle.0, run.0, "round metrics diverged: {tag}");
            assert_eq!(oracle.1, run.1, "model bits diverged: {tag}");
            assert_eq!(oracle.2, run.2, "health records diverged: {tag}");
        }
    }
}

// ---------------------------------------------------------------------
// SIMD vs scalar: every dispatched kernel must agree exactly with its
// `simd::scalar` mirror on fuzzed inputs across degenerate (d = 1),
// odd, word-aligned, and paper-scale (d = 10 000) dimensionalities.
// Under `FHDNN_NO_SIMD=1` (a dedicated CI leg) the dispatcher itself
// resolves to the scalar backend, so the same assertions pin that the
// escape hatch changes nothing either.
// ---------------------------------------------------------------------

/// The mask clearing pad bits above `dim` in the last packed word.
fn pad_mask(dim: usize) -> u64 {
    match dim % 64 {
        0 => !0,
        tail => (1u64 << tail) - 1,
    }
}

#[test]
fn simd_kernels_match_scalar_mirrors_on_fuzzed_inputs() {
    let backend = simd::active_backend();
    assert!(
        ["scalar", "avx2", "neon"].contains(&backend),
        "unknown backend {backend}"
    );
    const FUZZ_DIMS: &[usize] = &[1, 7, 63, 64, 65, 1000, 2048, 10_000];
    proptest_util::check(0xC0FF_EE00, 12, |case, g| {
        for &dim in FUZZ_DIMS {
            let words = dim.div_ceil(64);
            let f32s: Vec<f32> = (0..dim)
                .map(|_| match g.usize_below(10) {
                    0 => 0.0,
                    1 => -0.0,
                    _ => g.f32_in(-1.0, 1.0),
                })
                .collect();
            let i32s: Vec<i32> = (0..dim).map(|_| g.i32_in(-100, 100)).collect();
            let mut packed_a = vec![0u64; words];
            let mut packed_b = vec![0u64; words];
            simd::pack_f32_into(&f32s, &mut packed_a);
            simd::scalar::pack_f32_into(&f32s, &mut packed_b);
            assert_eq!(packed_a, packed_b, "pack_f32 case {case} dim {dim}");
            simd::pack_i32_into(&i32s, &mut packed_a);
            simd::scalar::pack_i32_into(&i32s, &mut packed_b);
            assert_eq!(packed_a, packed_b, "pack_i32 case {case} dim {dim}");

            let wa: Vec<u64> = {
                let mut w: Vec<u64> = (0..words).map(|_| g.next_u64()).collect();
                *w.last_mut().unwrap() &= pad_mask(dim);
                w
            };
            assert_eq!(
                simd::hamming(&wa, &packed_a),
                simd::scalar::hamming(&wa, &packed_a),
                "hamming case {case} dim {dim}"
            );

            let src: Vec<i32> = (0..dim).map(|_| g.i32_in(-100, 100)).collect();
            let mut dst_a = i32s.clone();
            let mut dst_b = i32s.clone();
            simd::add_assign_i32(&mut dst_a, &src);
            simd::scalar::add_assign_i32(&mut dst_b, &src);
            assert_eq!(dst_a, dst_b, "add_assign case {case} dim {dim}");

            let delta = g.i32_in(-3, 3);
            simd::accumulate_pm1(&mut dst_a, &wa, delta);
            simd::scalar::accumulate_pm1(&mut dst_b, &wa, delta);
            assert_eq!(dst_a, dst_b, "accumulate case {case} dim {dim}");

            let erased: Vec<u64> = {
                // Roughly one in four dims erased, pad bits clear.
                let mut w: Vec<u64> = (0..words).map(|_| g.next_u64() & g.next_u64()).collect();
                *w.last_mut().unwrap() &= pad_mask(dim);
                w
            };
            simd::vote_pm1_masked(&mut dst_a, &wa, &erased);
            simd::scalar::vote_pm1_masked(&mut dst_b, &wa, &erased);
            assert_eq!(dst_a, dst_b, "vote case {case} dim {dim}");
        }
    });
}
