//! Integration tests for checkpointing: capture a trained deployment,
//! round-trip it through a file, and verify bit-exact behavior.

use fhdnn::channel::NoiselessChannel;
use fhdnn::checkpoint::FhdnnCheckpoint;
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::nn::models::TrunkArch;

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fhdnn-test-{}-{name}.json", std::process::id()));
    p
}

#[test]
fn trained_deployment_roundtrips_through_disk() {
    // Train a small FHDnn system.
    let spec = ExperimentSpec::quick(Workload::Mnist);
    let mut extractor = spec.build_extractor().unwrap();
    let mut system = spec.build_fhdnn_with(&mut extractor).unwrap();
    system.run(&NoiselessChannel::new(), "train").unwrap();
    let trained_acc = system.evaluate().unwrap();
    assert!(trained_acc > 0.4, "trained accuracy {trained_acc}");

    // Capture with the same encoder derivation the system used.
    let encoder = RandomProjectionEncoder::new(
        system.hd_dim(),
        extractor.feature_width(),
        spec.seed ^ 0xe4c0de,
    )
    .unwrap();
    let ckpt = FhdnnCheckpoint::capture(
        spec.arch,
        spec.backbone,
        &extractor,
        &encoder,
        system.global(),
    )
    .unwrap();

    // Disk round trip.
    let path = temp_path("roundtrip");
    std::fs::write(&path, ckpt.to_json().unwrap()).unwrap();
    let loaded = FhdnnCheckpoint::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, ckpt);

    // The restored pipeline classifies a fresh test set identically to
    // the live one.
    let (mut ex2, enc2, hd2) = loaded.restore().unwrap();
    let test = spec.workload.spec().generate(100, 12345).unwrap();
    let live_h = encoder
        .encode_batch(&extractor.extract_chunked(&test.images, 64).unwrap())
        .unwrap();
    let restored_h = enc2
        .encode_batch(&ex2.extract_chunked(&test.images, 64).unwrap())
        .unwrap();
    assert_eq!(
        system.global().predict_batch(&live_h).unwrap(),
        hd2.predict_batch(&restored_h).unwrap()
    );
}

#[test]
fn checkpoint_preserves_backbone_architecture() {
    for arch in [TrunkArch::ResNet, TrunkArch::MobileNet] {
        let mut spec = ExperimentSpec::quick(Workload::Fashion);
        spec.arch = arch;
        let extractor = spec.build_extractor().unwrap();
        let encoder = RandomProjectionEncoder::new(256, extractor.feature_width(), 0).unwrap();
        let hd = fhdnn::hdc::model::HdModel::new(10, 256).unwrap();
        let ckpt =
            FhdnnCheckpoint::capture(arch, spec.backbone, &extractor, &encoder, &hd).unwrap();
        let json = ckpt.to_json().unwrap();
        let restored = FhdnnCheckpoint::from_json(&json).unwrap();
        assert_eq!(restored.backbone.arch, arch.into());
        restored.restore().unwrap();
    }
}

#[test]
fn malformed_checkpoints_are_rejected_cleanly() {
    assert!(FhdnnCheckpoint::from_json("not json").is_err());
    assert!(FhdnnCheckpoint::from_json("{}").is_err());
    assert!(FhdnnCheckpoint::from_json("{\"version\": 1}").is_err());
}
