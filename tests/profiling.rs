//! End-to-end profiling: the span-tree profile of a seeded federated run
//! agrees with the recorder's flat summary stats, nests the stage spans
//! under the `round` root (with `chan.uplink` below `round.transmit`),
//! survives an offline JSONL replay bit-for-bit, and exports valid
//! collapsed stacks.

use std::sync::Arc;

use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::datasets::features::FeatureSpec;
use fhdnn::datasets::partition::Partition;
use fhdnn::federated::config::FlConfig;
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::model::HdModel;
use fhdnn::telemetry::clock::ManualClock;
use fhdnn::telemetry::profile::Profile;
use fhdnn::telemetry::sink::JsonlSink;
use fhdnn::telemetry::{Recorder, Telemetry};
use fhdnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 1024;
const NUM_CLIENTS: usize = 4;
const ROUNDS: usize = 2;

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fhdnn-profiling-{}-{name}.jsonl",
        std::process::id()
    ));
    p
}

fn build_federation(transport: HdTransport) -> (HdFederation, HdClientData) {
    let spec = FeatureSpec {
        num_classes: 5,
        width: 40,
        noise_std: 0.6,
        class_seed: 11,
    };
    let train = spec.generate(NUM_CLIENTS * 25, 0).unwrap();
    let test = spec.generate(60, 1).unwrap();
    let enc = RandomProjectionEncoder::new(DIM, 40, 3).unwrap();
    let h_train = enc.encode_batch(&train.features).unwrap();
    let h_test = enc.encode_batch(&test.features).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let parts = Partition::Iid
        .split(&train.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients: Vec<HdClientData> = parts
        .iter()
        .map(|idx| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for &i in idx {
                data.extend_from_slice(h_train.row(i).unwrap());
                labels.push(train.labels[i]);
            }
            HdClientData {
                hypervectors: Tensor::from_vec(data, &[idx.len(), DIM]).unwrap(),
                labels,
            }
        })
        .collect();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: ROUNDS,
        local_epochs: 1,
        batch_size: 10,
        client_fraction: 0.5,
        seed: 7,
        ..FlConfig::default()
    };
    let global = HdModel::new(5, DIM).unwrap();
    let fed = HdFederation::new(global, clients, config, transport).unwrap();
    let test_data = HdClientData {
        hypervectors: h_test,
        labels: test.labels,
    };
    (fed, test_data)
}

/// Runs the fixture federation on a manual clock, streaming to `path`.
fn run_profiled(path: &std::path::Path, transport: HdTransport) -> Telemetry {
    let (mut fed, test) = build_federation(transport);
    let sink = JsonlSink::create(path).unwrap();
    let tel = Recorder::with_sink_and_clock(Arc::new(sink), Arc::new(ManualClock::new(10)));
    fed.set_telemetry(tel.clone());
    let channel = PacketLossChannel::new(0.3, 256).unwrap();
    fed.run(&channel, &test, "profiling").unwrap();
    tel.flush();
    tel
}

#[test]
fn profile_totals_agree_with_summary_stats() {
    let path = temp_path("totals");
    let tel = run_profiled(&path, HdTransport::Float);
    std::fs::remove_file(&path).ok();

    let profile = Profile::from_recorder(&tel);
    // The profiler and the summary table aggregate the same closures:
    // per-name totals must agree exactly.
    assert_eq!(profile.flat_totals(), tel.span_stats());

    // And the summary text names every span the tree contains.
    let summary = tel.summary();
    for (name, stat) in profile.flat_totals() {
        assert!(summary.contains(&name), "summary is missing span {name}");
        assert!(stat.count > 0, "{name} never completed");
    }
}

#[test]
fn stage_spans_nest_under_the_round_root() {
    let path = temp_path("tree");
    let tel = run_profiled(&path, HdTransport::Quantized { bitwidth: 8 });
    std::fs::remove_file(&path).ok();

    let profile = Profile::from_recorder(&tel);
    let round = profile
        .roots()
        .find(|n| n.name == "round")
        .expect("round root span");
    assert_eq!(round.count as usize, ROUNDS);
    for stage in [
        "round.broadcast",
        "round.local_train",
        "round.transmit",
        "round.aggregate",
        "round.eval",
    ] {
        assert!(
            round.children.contains_key(stage),
            "{stage} should nest under round, got {:?}",
            round.children.keys().collect::<Vec<_>>()
        );
    }
    // The quantized transport opens hdc.quantize and chan.uplink inside
    // the transmit stage.
    let transmit = &round.children["round.transmit"];
    assert!(transmit.children.contains_key("chan.uplink"));
    assert!(transmit.children.contains_key("hdc.quantize"));
    // Inclusive totals nest.
    assert!(round.total_micros >= transmit.total_micros);
    assert!(transmit.total_micros >= transmit.children["chan.uplink"].total_micros);
}

#[test]
fn offline_replay_matches_the_live_profile() {
    let path = temp_path("replay");
    let tel = run_profiled(&path, HdTransport::Float);
    let live = Profile::from_recorder(&tel);
    let replayed = Profile::from_jsonl_path(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(replayed.flat_totals(), live.flat_totals());
    assert_eq!(replayed.total_micros(), live.total_micros());
    assert_eq!(replayed.render(), live.render());
}

#[test]
fn collapsed_stacks_cover_the_accounted_time() {
    let path = temp_path("collapsed");
    let tel = run_profiled(&path, HdTransport::Float);
    std::fs::remove_file(&path).ok();

    let profile = Profile::from_recorder(&tel);
    let folded = profile.collapsed();
    let mut folded_total = 0u64;
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("weight-terminated line");
        assert!(stack.starts_with("round"), "stacks are rooted: {line}");
        folded_total += weight.parse::<u64>().expect("numeric weight");
    }
    // Self times over the whole tree sum back to the inclusive root total.
    assert_eq!(folded_total, profile.total_micros());
}
