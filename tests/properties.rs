//! Property-based tests (proptest) on the cross-crate invariants the
//! reproduction rests on.

use fhdnn::channel::packet::per_from_ber;
use fhdnn::channel::{Channel, NoiselessChannel};
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::masking::{mask_model_dimensions, similarity_retention};
use fhdnn::hdc::model::HdModel;
use fhdnn::hdc::quantizer::{dequantize, quantize};
use fhdnn::nn::linear::Linear;
use fhdnn::nn::Network;
use fhdnn::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| (x * 100.0).round() / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// sign(Φz) is idempotent under positive rescaling of z.
    #[test]
    fn encoding_is_scale_invariant(
        seed in 0u64..1000,
        scale in 0.1f32..50.0,
        features in proptest::collection::vec(-10.0f32..10.0, 8)
    ) {
        let enc = RandomProjectionEncoder::new(256, 8, seed).unwrap();
        let z = Tensor::from_vec(features.clone(), &[1, 8]).unwrap();
        let scaled = z.scale(scale);
        let a = enc.encode_batch(&z).unwrap();
        let b = enc.encode_batch(&scaled).unwrap();
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    /// Bundling is commutative and associative (element-wise sums).
    #[test]
    fn bundling_is_commutative(
        xs in proptest::collection::vec(small_f32(), 12),
        ys in proptest::collection::vec(small_f32(), 12)
    ) {
        let a = HdModel::from_prototypes(Tensor::from_vec(xs, &[3, 4]).unwrap()).unwrap();
        let b = HdModel::from_prototypes(Tensor::from_vec(ys, &[3, 4]).unwrap()).unwrap();
        let ab = HdModel::bundle(&[a.clone(), b.clone()]).unwrap();
        let ba = HdModel::bundle(&[b, a]).unwrap();
        prop_assert_eq!(ab.prototypes().as_slice(), ba.prototypes().as_slice());
    }

    /// Quantize→dequantize error is bounded by one quantization step per
    /// element: |x - x̂| <= max|row| / (2^{B-1} - 1).
    #[test]
    fn quantizer_roundtrip_error_bounded(
        values in proptest::collection::vec(small_f32(), 8),
        bitwidth in 4u32..17
    ) {
        let m = HdModel::from_prototypes(
            Tensor::from_vec(values.clone(), &[2, 4]).unwrap()
        ).unwrap();
        let back = dequantize(&quantize(&m, bitwidth).unwrap()).unwrap();
        let max_word = ((1i64 << (bitwidth - 1)) - 1) as f32;
        for row in 0..2 {
            let orig = m.prototypes().row(row).unwrap();
            let rec = back.prototypes().row(row).unwrap();
            let max_abs = orig.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
            let step = if max_abs > 0.0 { max_abs / max_word } else { 0.0 };
            for (o, r) in orig.iter().zip(rec) {
                prop_assert!(
                    (o - r).abs() <= step * 1.001 + 1e-6,
                    "row {}: {} vs {} (step {})", row, o, r, step
                );
            }
        }
    }

    /// Packet error rate is monotone in both BER and packet size, and is
    /// a valid probability.
    #[test]
    fn per_is_monotone_probability(
        ber in 0.0f64..0.1,
        bits_a in 1u32..10_000,
        bits_b in 1u32..10_000
    ) {
        let (lo, hi) = if bits_a <= bits_b { (bits_a, bits_b) } else { (bits_b, bits_a) };
        let p_lo = per_from_ber(ber, lo);
        let p_hi = per_from_ber(ber, hi);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_lo <= p_hi + 1e-12);
        prop_assert!(per_from_ber(ber, lo) <= per_from_ber((ber + 0.01).min(1.0), lo) + 1e-12);
    }

    /// Masking retention is within [~-eps, 1] and equals 1 at zero removal.
    #[test]
    fn masking_retention_bounded(
        seed in 0u64..500,
        remove in 0.0f32..1.0
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = HdModel::from_prototypes(Tensor::randn(&[2, 512], 1.0, &mut rng)).unwrap();
        let masked = mask_model_dimensions(&model, remove, &mut rng).unwrap();
        let r = similarity_retention(&model, &masked, 0).unwrap();
        prop_assert!(r <= 1.0 + 1e-5, "retention {}", r);
        prop_assert!(r >= -0.05, "retention {}", r);
    }

    /// Parameter flatten → load is the identity on network behavior.
    #[test]
    fn param_roundtrip_preserves_network(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new()
            .push(Linear::new(5, 7, &mut rng).unwrap())
            .push(Linear::new(7, 3, &mut rng).unwrap());
        let flat = net.flatten_params();
        let x = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let before = net.forward(&x, fhdnn::nn::Mode::Eval).unwrap();
        net.load_params(&flat).unwrap();
        let after = net.forward(&x, fhdnn::nn::Mode::Eval).unwrap();
        prop_assert_eq!(before.as_slice(), after.as_slice());
    }

    /// The noiseless channel is exactly the identity on any payload.
    #[test]
    fn noiseless_channel_is_identity(
        payload in proptest::collection::vec(-1e6f32..1e6, 0..64)
    ) {
        let ch = NoiselessChannel::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = payload.clone();
        ch.transmit_f32(&mut p, &mut rng);
        prop_assert_eq!(p, payload);
    }

    /// HD model accuracy is invariant to uniform positive scaling of the
    /// prototypes (cosine-similarity inference).
    #[test]
    fn hd_inference_scale_invariant(
        seed in 0u64..200,
        scale in 0.01f32..100.0
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos = Tensor::randn(&[4, 128], 1.0, &mut rng);
        let queries = Tensor::randn(&[8, 128], 1.0, &mut rng);
        let model = HdModel::from_prototypes(protos.clone()).unwrap();
        let scaled = HdModel::from_prototypes(protos.scale(scale)).unwrap();
        prop_assert_eq!(
            model.predict_batch(&queries).unwrap(),
            scaled.predict_batch(&queries).unwrap()
        );
    }
}
