//! A tiny zero-dependency property-testing harness.
//!
//! Not a registered test target — test crates include it with
//! `#[path = "proptest_util.rs"] mod proptest_util;`. It exists so
//! invariant suites can generate hundreds of random cases without
//! pulling a generator framework into the dependency tree: a
//! splitmix64 stream per case, uniform helpers, a Fisher–Yates
//! shuffle, and a driver that stamps every case with a reproducible
//! seed.
//!
//! There is no shrinking; instead every case derives from a stable
//! `(suite seed, case index)` pair, so a failure message naming the
//! case index is already a minimal reproducer.

#![allow(dead_code)]

/// A splitmix64 generator: tiny state, full 64-bit avalanche per draw,
/// and the same stream on every platform.
pub struct Gen {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl Gen {
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// Next raw draw (splitmix64 finalizer over a golden-ratio stream).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform in `[0, n)`; `n` must be positive. The modulo bias over
    /// a 64-bit draw is immaterial at test-sized ranges.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo <= hi);
        lo + self.usize_below((hi - lo) as usize + 1) as i32
    }

    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.unit_f32() * (hi - lo)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.usize_below(i + 1));
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

/// Runs `prop` for `cases` independently seeded cases. The closure
/// receives the case index — include it in assertion messages and the
/// failure is reproducible by running the same suite seed and index.
pub fn check(suite_seed: u64, cases: usize, mut prop: impl FnMut(usize, &mut Gen)) {
    for case in 0..cases {
        let mut g = Gen::new(suite_seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        prop(case, &mut g);
    }
}
