//! Determinism: every experiment in this repository is seeded, so equal
//! configurations must produce bit-identical histories.

use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::channel::NoiselessChannel;
use fhdnn::datasets::image::SynthSpec;
use fhdnn::experiment::{ExperimentSpec, Workload};

#[test]
fn fhdnn_runs_are_deterministic() {
    let spec = ExperimentSpec::quick(Workload::Mnist);
    let a = spec.run_fhdnn(&NoiselessChannel::new()).unwrap();
    let b = spec.run_fhdnn(&NoiselessChannel::new()).unwrap();
    assert_eq!(a.history, b.history);
}

#[test]
fn lossy_runs_are_deterministic_too() {
    // Channel randomness is drawn from the federation's seeded RNG.
    let spec = ExperimentSpec::quick(Workload::Mnist);
    let ch = PacketLossChannel::new(0.2, 256 * 8).unwrap();
    let a = spec.run_fhdnn(&ch).unwrap();
    let b = spec.run_fhdnn(&ch).unwrap();
    assert_eq!(a.history, b.history);
}

#[test]
fn different_seeds_differ() {
    let spec = ExperimentSpec::quick(Workload::Mnist);
    let mut other = spec.clone();
    other.seed = 1;
    other.fl.seed = 1;
    let a = spec.run_fhdnn(&NoiselessChannel::new()).unwrap();
    let b = other.run_fhdnn(&NoiselessChannel::new()).unwrap();
    assert_ne!(a.history, b.history);
}

#[test]
fn resnet_runs_are_deterministic() {
    let mut spec = ExperimentSpec::quick(Workload::Mnist);
    spec.fl.rounds = 2;
    let a = spec.run_resnet(&NoiselessChannel::new()).unwrap();
    let b = spec.run_resnet(&NoiselessChannel::new()).unwrap();
    assert_eq!(a.history, b.history);
}

#[test]
fn dataset_generation_is_stable_across_sizes() {
    // Prototypes depend only on the class seed, not the sample count:
    // the first k samples of a larger draw share per-class structure.
    let spec = SynthSpec::cifar_like();
    let small = spec.generate(10, 42).unwrap();
    let large = spec.generate(100, 42).unwrap();
    assert_eq!(small.labels[..10], large.labels[..10]);
    // Identical seeds => identical leading samples (same RNG stream).
    assert_eq!(
        small.sample(0).unwrap().as_slice(),
        large.sample(0).unwrap().as_slice()
    );
}
