//! The paper's central comparative claims under unreliable channels
//! (Figure 8), as integration tests.

use fhdnn::channel::awgn::AwgnChannel;
use fhdnn::channel::bit_error::BitErrorChannel;
use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::channel::NoiselessChannel;
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::federated::fedhd::HdTransport;

/// The paper's robustness claims concern the full FHDnn pipeline: a
/// contrastively pretrained, frozen extractor in front of the HD learner.
/// Separable prototypes are what the holographic redundancy protects.
fn spec() -> ExperimentSpec {
    ExperimentSpec::quick(Workload::Mnist).with_light_pretrain()
}

#[test]
fn fhdnn_survives_20_percent_packet_loss() {
    // The paper's headline robustness claim: at the realistic 20% loss
    // rate FHDnn keeps nearly its clean accuracy.
    let s = spec();
    let clean = s
        .run_fhdnn(&NoiselessChannel::new())
        .unwrap()
        .history
        .final_accuracy();
    let lossy = s
        .run_fhdnn(&PacketLossChannel::new(0.2, 256 * 8).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    assert!(lossy > clean - 0.15, "clean {clean} vs 20% loss {lossy}");
}

#[test]
fn resnet_collapses_under_20_percent_packet_loss() {
    let s = spec();
    let lossy = s
        .run_resnet(&PacketLossChannel::new(0.2, 256 * 8).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    // 10 classes: collapse means near-chance.
    assert!(lossy < 0.3, "resnet under 20% loss: {lossy}");
}

#[test]
fn fhdnn_beats_resnet_under_packet_loss() {
    let s = spec();
    let ch = PacketLossChannel::new(0.2, 256 * 8).unwrap();
    let fh = s.run_fhdnn(&ch).unwrap().history.final_accuracy();
    let cnn = s.run_resnet(&ch).unwrap().history.final_accuracy();
    assert!(fh > cnn + 0.2, "fhdnn {fh} vs resnet {cnn}");
}

#[test]
fn bit_errors_destroy_float_cnn_aggregation() {
    // Even a tiny BER puts float32 CNN weights at risk of exponent-bit
    // corruption; the paper calls the failure inevitable.
    let s = spec();
    let ch = BitErrorChannel::new(1e-4).unwrap();
    let cnn = s.run_resnet(&ch).unwrap().history.final_accuracy();
    assert!(cnn < 0.3, "resnet under BER 1e-4: {cnn}");
}

#[test]
fn quantizer_rescues_hd_from_bit_errors() {
    let mut s = spec();
    let ch = BitErrorChannel::new(1e-3).unwrap();
    s.transport = HdTransport::Float;
    let float_acc = s.run_fhdnn(&ch).unwrap().history.final_accuracy();
    s.transport = HdTransport::Quantized { bitwidth: 16 };
    let quant_acc = s.run_fhdnn(&ch).unwrap().history.final_accuracy();
    assert!(
        quant_acc > float_acc + 0.15,
        "quantized {quant_acc} vs float {float_acc} at BER 1e-3"
    );
    assert!(quant_acc > 0.5, "quantized accuracy {quant_acc}");
}

/// Figure 5: the packed binary transport carries one sign bit per
/// dimension, so a binary-symmetric channel can only flip signs — there
/// is no exponent to corrupt and no quantizer range to blow out. The
/// holographic majority vote absorbs heavy flip rates gracefully: BER
/// 0.1 costs almost nothing, and even BER 0.3 (a 30% sign-flip rate)
/// stays within tolerance of the quantized transport under the same
/// damage while the float transport is long dead at these rates.
#[test]
fn binary_transport_degrades_gracefully_under_bit_errors() {
    let mut s = spec();
    s.transport = HdTransport::Binary;

    let clean_history = s.run_fhdnn(&NoiselessChannel::new()).unwrap().history;
    let clean = clean_history.final_accuracy();
    // The uplink costs exactly one padded bit-row per class — the wire
    // format IS the packed in-memory representation.
    let expected_bytes = 10 * (s.hd_dim as u64).div_ceil(8);
    for r in &clean_history.rounds {
        assert_eq!(
            r.bytes_per_client, expected_bytes,
            "round {} uplink must be classes x dim/8 bytes",
            r.round
        );
    }

    let ber_01 = s
        .run_fhdnn(&BitErrorChannel::new(0.1).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    let ber_03 = s
        .run_fhdnn(&BitErrorChannel::new(0.3).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    assert!(clean > 0.6, "clean binary accuracy {clean}");
    assert!(
        ber_01 > clean - 0.1,
        "BER 0.1 must be nearly free: clean {clean} vs {ber_01}"
    );
    assert!(
        ber_03 > clean - 0.25,
        "BER 0.3 must degrade gracefully: clean {clean} vs {ber_03}"
    );

    // Within tolerance of the quantized transport under identical
    // damage, and far above the float transport's collapse regime.
    s.transport = HdTransport::Quantized { bitwidth: 8 };
    let quant_03 = s
        .run_fhdnn(&BitErrorChannel::new(0.3).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    s.transport = HdTransport::Float;
    let float_03 = s
        .run_fhdnn(&BitErrorChannel::new(0.3).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    let binary_03 = ber_03;
    assert!(
        binary_03 > quant_03 - 0.15,
        "binary {binary_03} vs quantized {quant_03} at BER 0.3"
    );
    assert!(
        binary_03 > float_03,
        "binary {binary_03} vs float {float_03} at BER 0.3"
    );
}

#[test]
fn fhdnn_tolerates_low_snr_awgn() {
    let s = spec();
    let clean = s
        .run_fhdnn(&NoiselessChannel::new())
        .unwrap()
        .history
        .final_accuracy();
    let noisy = s
        .run_fhdnn(&AwgnChannel::new(10.0).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    // The paper reports only ~3% loss for FHDnn under noisy links.
    assert!(noisy > clean - 0.15, "clean {clean} vs 10 dB AWGN {noisy}");
}

#[test]
fn awgn_hurts_resnet_more_than_fhdnn() {
    let s = spec();
    let ch = AwgnChannel::new(5.0).unwrap();
    let fh = s.run_fhdnn(&ch).unwrap().history.final_accuracy();
    let cnn = s.run_resnet(&ch).unwrap().history.final_accuracy();
    assert!(fh > cnn, "fhdnn {fh} vs resnet {cnn} at 5 dB");
}
