//! The paper's central comparative claims under unreliable channels
//! (Figure 8), as integration tests.

use fhdnn::channel::awgn::AwgnChannel;
use fhdnn::channel::bit_error::BitErrorChannel;
use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::channel::NoiselessChannel;
use fhdnn::experiment::{ExperimentSpec, Workload};
use fhdnn::federated::fedhd::HdTransport;

/// The paper's robustness claims concern the full FHDnn pipeline: a
/// contrastively pretrained, frozen extractor in front of the HD learner.
/// Separable prototypes are what the holographic redundancy protects.
fn spec() -> ExperimentSpec {
    ExperimentSpec::quick(Workload::Mnist).with_light_pretrain()
}

#[test]
fn fhdnn_survives_20_percent_packet_loss() {
    // The paper's headline robustness claim: at the realistic 20% loss
    // rate FHDnn keeps nearly its clean accuracy.
    let s = spec();
    let clean = s
        .run_fhdnn(&NoiselessChannel::new())
        .unwrap()
        .history
        .final_accuracy();
    let lossy = s
        .run_fhdnn(&PacketLossChannel::new(0.2, 256 * 8).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    assert!(lossy > clean - 0.15, "clean {clean} vs 20% loss {lossy}");
}

#[test]
fn resnet_collapses_under_20_percent_packet_loss() {
    let s = spec();
    let lossy = s
        .run_resnet(&PacketLossChannel::new(0.2, 256 * 8).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    // 10 classes: collapse means near-chance.
    assert!(lossy < 0.3, "resnet under 20% loss: {lossy}");
}

#[test]
fn fhdnn_beats_resnet_under_packet_loss() {
    let s = spec();
    let ch = PacketLossChannel::new(0.2, 256 * 8).unwrap();
    let fh = s.run_fhdnn(&ch).unwrap().history.final_accuracy();
    let cnn = s.run_resnet(&ch).unwrap().history.final_accuracy();
    assert!(fh > cnn + 0.2, "fhdnn {fh} vs resnet {cnn}");
}

#[test]
fn bit_errors_destroy_float_cnn_aggregation() {
    // Even a tiny BER puts float32 CNN weights at risk of exponent-bit
    // corruption; the paper calls the failure inevitable.
    let s = spec();
    let ch = BitErrorChannel::new(1e-4).unwrap();
    let cnn = s.run_resnet(&ch).unwrap().history.final_accuracy();
    assert!(cnn < 0.3, "resnet under BER 1e-4: {cnn}");
}

#[test]
fn quantizer_rescues_hd_from_bit_errors() {
    let mut s = spec();
    let ch = BitErrorChannel::new(1e-3).unwrap();
    s.transport = HdTransport::Float;
    let float_acc = s.run_fhdnn(&ch).unwrap().history.final_accuracy();
    s.transport = HdTransport::Quantized { bitwidth: 16 };
    let quant_acc = s.run_fhdnn(&ch).unwrap().history.final_accuracy();
    assert!(
        quant_acc > float_acc + 0.15,
        "quantized {quant_acc} vs float {float_acc} at BER 1e-3"
    );
    assert!(quant_acc > 0.5, "quantized accuracy {quant_acc}");
}

#[test]
fn fhdnn_tolerates_low_snr_awgn() {
    let s = spec();
    let clean = s
        .run_fhdnn(&NoiselessChannel::new())
        .unwrap()
        .history
        .final_accuracy();
    let noisy = s
        .run_fhdnn(&AwgnChannel::new(10.0).unwrap())
        .unwrap()
        .history
        .final_accuracy();
    // The paper reports only ~3% loss for FHDnn under noisy links.
    assert!(noisy > clean - 0.15, "clean {clean} vs 10 dB AWGN {noisy}");
}

#[test]
fn awgn_hurts_resnet_more_than_fhdnn() {
    let s = spec();
    let ch = AwgnChannel::new(5.0).unwrap();
    let fh = s.run_fhdnn(&ch).unwrap().history.final_accuracy();
    let cnn = s.run_resnet(&ch).unwrap().history.final_accuracy();
    assert!(fh > cnn, "fhdnn {fh} vs resnet {cnn} at 5 dB");
}
