//! End-to-end telemetry: a seeded federated run streams a JSONL event log
//! that is parseable line-by-line, names every expected span and counter,
//! agrees with the run's byte accounting, and is byte-identical across
//! same-seed runs under an injected manual clock (modulo the raw memory
//! watermarks, which measure the process's real heap).

use std::collections::BTreeSet;
use std::sync::Arc;

use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::channel::{Channel, NoiselessChannel};
use fhdnn::datasets::features::FeatureSpec;
use fhdnn::datasets::partition::Partition;
use fhdnn::federated::config::FlConfig;
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::federated::metrics::RunHistory;
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::model::HdModel;
use fhdnn::telemetry::clock::ManualClock;
use fhdnn::telemetry::sink::JsonlSink;
use fhdnn::telemetry::{Recorder, Telemetry};
use fhdnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 1024;
const NUM_CLIENTS: usize = 4;

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fhdnn-telemetry-{}-{name}.jsonl",
        std::process::id()
    ));
    p
}

/// Pre-encoded clients and test set, mirroring the fedhd unit fixtures.
fn build_federation(seed: u64) -> (HdFederation, HdClientData) {
    let spec = FeatureSpec {
        num_classes: 5,
        width: 40,
        noise_std: 0.6,
        class_seed: 11,
    };
    let train = spec.generate(NUM_CLIENTS * 25, seed).unwrap();
    let test = spec.generate(60, seed + 1).unwrap();
    let enc = RandomProjectionEncoder::new(DIM, 40, 3).unwrap();
    let h_train = enc.encode_batch(&train.features).unwrap();
    let h_test = enc.encode_batch(&test.features).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = Partition::Iid
        .split(&train.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients: Vec<HdClientData> = parts
        .iter()
        .map(|idx| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for &i in idx {
                data.extend_from_slice(h_train.row(i).unwrap());
                labels.push(train.labels[i]);
            }
            HdClientData {
                hypervectors: Tensor::from_vec(data, &[idx.len(), DIM]).unwrap(),
                labels,
            }
        })
        .collect();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: 2,
        local_epochs: 1,
        batch_size: 10,
        client_fraction: 0.5,
        seed: 7,
        ..FlConfig::default()
    };
    let global = HdModel::new(5, DIM).unwrap();
    let fed = HdFederation::new(global, clients, config, HdTransport::Float).unwrap();
    let test_data = HdClientData {
        hypervectors: h_test,
        labels: test.labels,
    };
    (fed, test_data)
}

/// Runs the fixture federation streaming events to `path` on a manual
/// clock (10 µs per reading), so the stream is fully deterministic.
fn run_with_jsonl(path: &std::path::Path, channel: &dyn Channel) -> (RunHistory, Telemetry) {
    let (mut fed, test) = build_federation(0);
    let sink = JsonlSink::create(path).unwrap();
    let tel = Recorder::with_sink_and_clock(Arc::new(sink), Arc::new(ManualClock::new(10)));
    fed.set_telemetry(tel.clone());
    let history = fed.run(channel, &test, "telemetry").unwrap();
    tel.flush();
    (history, tel)
}

#[test]
fn jsonl_stream_is_parseable_and_names_every_stage() {
    let path = temp_path("parseable");
    let channel = PacketLossChannel::new(0.3, 256).unwrap();
    let (history, tel) = run_with_jsonl(&path, &channel);

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut lines = 0usize;
    for line in text.lines() {
        lines += 1;
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {lines} is not valid JSON ({e}): {line}"));
        assert!(v.get("ts").and_then(|t| t.as_u64()).is_some(), "{line}");
        assert!(v.get("fields").is_some(), "{line}");
        let kind = v["kind"].as_str().unwrap().to_string();
        let name = v["name"].as_str().unwrap().to_string();
        seen.insert((kind, name));
    }
    assert!(lines > 0, "event stream is empty");

    for span in [
        "round.broadcast",
        "round.local_train",
        "round.transmit",
        "round.aggregate",
        "round.eval",
    ] {
        assert!(
            seen.contains(&("span".into(), span.into())),
            "missing span {span}"
        );
    }
    for counter in [
        "fl.rounds",
        "fl.participants",
        "fl.bytes_up",
        "fl.bytes_down",
    ] {
        assert!(
            seen.contains(&("counter".into(), counter.into())),
            "missing counter {counter}"
        );
    }
    assert!(seen.contains(&("gauge".into(), "fl.test_accuracy".into())));
    assert!(seen.contains(&("hist".into(), "fl.round_micros".into())));
    // The tracked allocator's per-round watermarks ride the same stream.
    for mem in ["mem.allocs", "mem.alloc_bytes"] {
        assert!(
            seen.contains(&("counter".into(), mem.into())),
            "missing counter {mem}"
        );
    }
    for mem in ["mem.peak_bytes", "mem.live_bytes"] {
        assert!(
            seen.contains(&("gauge".into(), mem.into())),
            "missing gauge {mem}"
        );
    }
    // The lossy channel must surface as realized impairments.
    assert!(seen.contains(&("counter".into(), "chan.dims_erased".into())));
    assert!(tel.counter_value("chan.dims_erased") > 0);
    assert!(tel.counter_value("chan.packets_dropped") > 0);

    // Uplink accounting agrees with the run history (no stragglers, so
    // every sampled participant's update arrived).
    assert_eq!(
        tel.counter_value("fl.bytes_up"),
        history.total_uplink_bytes()
    );
    assert_eq!(
        tel.counter_value("fl.participants"),
        history.rounds.iter().map(|r| r.participants as u64).sum()
    );
    assert_eq!(tel.counter_value("fl.rounds"), history.rounds.len() as u64);
}

/// Canonicalizes a stream for cross-run comparison: raw memory
/// watermarks measure the process's real heap, which depends on what
/// earlier runs and concurrent tests left live, so `mem.*` lines drop
/// and the `mem_*` fields of `health.round` lines zero. Everything else
/// — including the span-attributed allocation fields, which are
/// thread-local deltas — must be byte-identical.
fn canonical_stream(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let mut v: serde_json::Value = serde_json::from_str(line).unwrap();
        let name = v["name"].as_str().unwrap_or_default().to_string();
        // The jsonl_bytes self-meter counts serialized bytes, whose
        // digit widths include those same heap watermarks — equally
        // environment-dependent, equally dropped.
        if name.starts_with("mem.") || name == "telemetry.overhead.jsonl_bytes" {
            continue;
        }
        if name == "health.round" {
            let fields = v["fields"].as_object_mut().unwrap();
            for key in ["mem_peak_bytes", "mem_allocs", "mem_bytes_per_client"] {
                fields.insert(key.to_string(), 0u64.into());
            }
        }
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn same_seed_streams_are_byte_identical() {
    let pa = temp_path("identical-a");
    let pb = temp_path("identical-b");
    let channel = PacketLossChannel::new(0.3, 256).unwrap();
    let (ha, _) = run_with_jsonl(&pa, &channel);
    let (hb, _) = run_with_jsonl(&pb, &channel);
    let a = canonical_stream(&std::fs::read_to_string(&pa).unwrap());
    let b = canonical_stream(&std::fs::read_to_string(&pb).unwrap());
    std::fs::remove_file(&pa).ok();
    std::fs::remove_file(&pb).ok();
    assert_eq!(ha, hb, "histories diverged under one seed");
    assert!(!a.is_empty());
    assert_eq!(a, b, "event streams diverged under one seed");
}

#[test]
fn clean_channel_emits_no_impairment_counters() {
    let path = temp_path("clean");
    let (_, tel) = run_with_jsonl(&path, &NoiselessChannel::new());
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(tel.counter_value("chan.bits_flipped"), 0);
    assert_eq!(tel.counter_value("chan.dims_erased"), 0);
    for suppressed in ["chan.bits_flipped", "chan.dims_erased", "chan.noise_energy"] {
        assert!(
            !text.contains(suppressed),
            "{suppressed} should be suppressed on a clean channel"
        );
    }
    // Transmissions themselves are still accounted.
    assert!(tel.counter_value("chan.transmissions") > 0);
}

#[test]
fn disabled_recorder_changes_nothing() {
    let channel = NoiselessChannel::new();
    let (mut plain_fed, test) = build_federation(0);
    let plain = plain_fed.run(&channel, &test, "plain").unwrap();
    let (mut instr_fed, test2) = build_federation(0);
    instr_fed.set_telemetry(Recorder::disabled());
    let instrumented = instr_fed.run(&channel, &test2, "plain").unwrap();
    assert_eq!(plain, instrumented);
}
