//! Execution-trace layer, end to end.
//!
//! The round-anatomy tracer records one `TaskTrace` per client task with
//! two lanes: a *measured* lane (worker index, queue-wait and execute
//! stamps from the injectable clock) that legitimately depends on
//! scheduling, and a *simulated* lane (device-compute and uplink-airtime
//! micros from `cost::DeviceProfile` and `LteLink`) that must be a pure
//! function of the seed. This suite pins the contract at the campaign
//! level: the Chrome trace export is byte-identical across thread counts
//! once the measured lane is canonicalized, critical-path attribution
//! agrees between the event stream, the round metrics and a by-hand
//! recomputation from the simulated costs, both engines tag their tasks,
//! and the attribution stays live (and identical) when telemetry is
//! disabled entirely.

use std::sync::Arc;

use fhdnn::channel::lte::LteLink;
use fhdnn::channel::packet::PacketLossChannel;
use fhdnn::datasets::features::FeatureSpec;
use fhdnn::datasets::image::SynthSpec;
use fhdnn::datasets::partition::Partition;
use fhdnn::federated::config::FlConfig;
use fhdnn::federated::cost::DeviceProfile;
use fhdnn::federated::fedavg::{carve_clients, CnnFederation, LocalSgdConfig};
use fhdnn::federated::fedhd::{HdClientData, HdFederation, HdTransport};
use fhdnn::federated::metrics::RunHistory;
use fhdnn::hdc::encoder::RandomProjectionEncoder;
use fhdnn::hdc::model::HdModel;
use fhdnn::nn::models::small_cnn;
use fhdnn::telemetry::clock::ManualClock;
use fhdnn::telemetry::sink::MemorySink;
use fhdnn::telemetry::trace::{chrome_trace, summarize, TaskTrace};
use fhdnn::telemetry::{Recorder, Telemetry};
use fhdnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 1024;
const NUM_CLIENTS: usize = 4;

fn memory_recorder() -> Telemetry {
    Recorder::with_sink_and_clock(Arc::new(MemorySink::new()), Arc::new(ManualClock::new(10)))
}

/// Same fixture family as the determinism suite: pre-encoded clients
/// over the synthetic feature workload, quantized uploads, stragglers
/// and packet loss in the mix so arrival-dependent uplink costs are
/// exercised.
fn build_hd_federation(seed: u64) -> (HdFederation, HdClientData) {
    let spec = FeatureSpec {
        num_classes: 5,
        width: 40,
        noise_std: 0.6,
        class_seed: 11,
    };
    let train = spec.generate(NUM_CLIENTS * 25, seed).unwrap();
    let test = spec.generate(60, seed + 1).unwrap();
    let enc = RandomProjectionEncoder::new(DIM, 40, 3).unwrap();
    let h_train = enc.encode_batch(&train.features).unwrap();
    let h_test = enc.encode_batch(&test.features).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = Partition::Iid
        .split(&train.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients: Vec<HdClientData> = parts
        .iter()
        .map(|idx| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for &i in idx {
                data.extend_from_slice(h_train.row(i).unwrap());
                labels.push(train.labels[i]);
            }
            HdClientData {
                hypervectors: Tensor::from_vec(data, &[idx.len(), DIM]).unwrap(),
                labels,
            }
        })
        .collect();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: 3,
        local_epochs: 2,
        batch_size: 10,
        client_fraction: 0.5,
        seed: 7,
        ..FlConfig::default()
    };
    let global = HdModel::new(5, DIM).unwrap();
    let fed = HdFederation::new(
        global,
        clients,
        config,
        HdTransport::Quantized { bitwidth: 8 },
    )
    .unwrap();
    let test_data = HdClientData {
        hypervectors: h_test,
        labels: test.labels,
    };
    (fed, test_data)
}

/// One instrumented fedhd campaign at the given thread count; returns
/// the history, the recorded task traces, and the configured link so
/// tests can recompute the uplink airtime.
fn traced_fedhd_run(threads: usize) -> (RunHistory, Vec<TaskTrace>, LteLink, u64) {
    let (mut fed, test) = build_hd_federation(0);
    fed.set_threads(threads);
    fed.set_straggler_prob(0.25).unwrap();
    let tel = memory_recorder();
    fed.set_telemetry(tel.clone());
    let channel = PacketLossChannel::new(0.2, 256).unwrap();
    let history = fed.run(&channel, &test, "trace").unwrap();
    tel.flush();
    let link = fed.lte_link();
    let bytes = fed.update_bytes();
    (history, tel.trace_snapshot(), link, bytes)
}

/// Canonicalized Chrome export: the measured lane (worker index and
/// clock stamps) is scheduling-dependent, so it zeroes; everything else
/// — slice order, client identity, simulated durations, straggler tags —
/// must yield the same bytes.
fn canonical_chrome(rows: &[TaskTrace]) -> String {
    let rows: Vec<TaskTrace> = rows.iter().map(TaskTrace::canonical).collect();
    chrome_trace(&rows)
}

#[test]
fn chrome_export_is_byte_identical_across_thread_counts() {
    let (_, rows, _, _) = traced_fedhd_run(1);
    assert!(!rows.is_empty(), "instrumented run recorded no task traces");
    let baseline = canonical_chrome(&rows);
    assert!(baseline.starts_with("{\"traceEvents\":["));
    assert!(baseline.contains("fedhd"));
    assert!(baseline.contains("simulated: AIoT devices"));
    for threads in [2usize, 8] {
        let (_, rows, _, _) = traced_fedhd_run(threads);
        assert_eq!(
            baseline,
            canonical_chrome(&rows),
            "chrome trace diverged at {threads} threads"
        );
    }
}

#[test]
fn critical_path_attribution_matches_the_simulated_costs() {
    let (history, rows, link, bytes) = traced_fedhd_run(4);
    let expected_uplink = (link.airtime_seconds(bytes) * 1e6).round() as u64;
    assert!(expected_uplink > 0);
    for r in &rows {
        assert_eq!(r.engine, "fedhd");
        assert_eq!(r.sim_uplink_micros, expected_uplink);
        assert!(
            r.sim_compute_micros > 0,
            "client {} has no compute",
            r.client
        );
    }
    let summaries = summarize(&rows);
    assert_eq!(summaries.len(), history.rounds.len());
    for (s, m) in summaries.iter().zip(&history.rounds) {
        assert_eq!(s.critical_client, m.trace_critical_client);
        assert_eq!(s.sim_round_micros, m.trace_sim_round_micros);
        // Recompute the attribution by hand from the simulated lane:
        // the critical client is the first one whose compute plus
        // (if it arrived) uplink airtime is maximal.
        let round_rows: Vec<&TaskTrace> = rows.iter().filter(|r| r.round == s.round).collect();
        assert_eq!(round_rows.len() as u64, s.tasks);
        let mut crit = round_rows[0];
        for r in &round_rows[1..] {
            if r.sim_cost_micros() > crit.sim_cost_micros() {
                crit = r;
            }
        }
        assert_eq!(s.critical_client, crit.client);
        assert_eq!(s.sim_critical_micros, crit.sim_cost_micros());
        let max_compute = round_rows
            .iter()
            .map(|r| r.sim_compute_micros)
            .max()
            .unwrap();
        let uplinks: u64 = round_rows
            .iter()
            .filter(|r| r.arrived)
            .map(|r| r.sim_uplink_micros)
            .sum();
        assert_eq!(s.sim_round_micros, max_compute + uplinks);
    }
}

/// The attribution is pure arithmetic over the cost model, so it stays
/// live — and identical — when no recorder is attached at all.
#[test]
fn disabled_telemetry_still_attributes_the_critical_path() {
    let (instrumented, _, _, _) = traced_fedhd_run(2);
    let (mut fed, test) = build_hd_federation(0);
    fed.set_threads(2);
    fed.set_straggler_prob(0.25).unwrap();
    let channel = PacketLossChannel::new(0.2, 256).unwrap();
    let plain = fed.run(&channel, &test, "trace").unwrap();
    for (a, b) in plain.rounds.iter().zip(&instrumented.rounds) {
        assert!(a.trace_sim_round_micros > 0);
        assert_eq!(a.trace_critical_client, b.trace_critical_client);
        assert_eq!(a.trace_sim_round_micros, b.trace_sim_round_micros);
    }
}

/// Swapping the device or link model moves the simulated round time the
/// way the AIoT cost model says it should: a Raspberry Pi 3B computes
/// slower than a Jetson, and the 1.6 Mbit/s error-free link holds the
/// uplink longer than the 5 Mbit/s error-admitting one.
#[test]
fn slower_devices_and_links_stretch_the_simulated_round() {
    let sim_total = |device: DeviceProfile, link: LteLink| -> u64 {
        let (mut fed, test) = build_hd_federation(0);
        fed.set_threads(2);
        fed.set_device_profile(device);
        fed.set_lte_link(link);
        let channel = PacketLossChannel::new(0.2, 256).unwrap();
        let history = fed.run(&channel, &test, "trace").unwrap();
        history
            .rounds
            .iter()
            .map(|r| r.trace_sim_round_micros)
            .sum()
    };
    let jetson = sim_total(DeviceProfile::jetson(), LteLink::error_admitting());
    assert!(jetson > 0);
    let pi = sim_total(DeviceProfile::raspberry_pi_3b(), LteLink::error_admitting());
    assert!(
        pi > jetson,
        "rpi3b ({pi} us) should be slower than jetson ({jetson} us)"
    );
    let slow_link = sim_total(DeviceProfile::jetson(), LteLink::error_free());
    assert!(
        slow_link > jetson,
        "error-free link ({slow_link} us) should stretch the uplink past ({jetson} us)"
    );
}

#[test]
fn fedavg_rounds_carry_traces_too() {
    let spec = SynthSpec::mnist_like();
    let pool = spec.generate(NUM_CLIENTS * 20, 3).unwrap();
    let test = spec.generate(60, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let parts = Partition::Iid
        .split(&pool.labels, NUM_CLIENTS, &mut rng)
        .unwrap();
    let clients = carve_clients(&pool, &parts).unwrap();
    let net = small_cnn(1, 16, 10, &mut rng).unwrap();
    let config = FlConfig {
        num_clients: NUM_CLIENTS,
        rounds: 2,
        local_epochs: 1,
        batch_size: 10,
        client_fraction: 0.5,
        seed: 3,
        ..FlConfig::default()
    };
    let mut fed = CnnFederation::new(net, clients, config, LocalSgdConfig::default()).unwrap();
    fed.set_threads(2);
    let tel = memory_recorder();
    fed.set_telemetry(tel.clone());
    let channel = PacketLossChannel::new(0.1, 256).unwrap();
    let history = fed.run(&channel, &test, "trace").unwrap();
    tel.flush();
    let rows = tel.trace_snapshot();
    assert!(!rows.is_empty(), "fedavg recorded no task traces");
    for r in &rows {
        assert_eq!(r.engine, "fedavg");
        assert!(r.arrived, "fedavg as configured has no stragglers");
        assert!(r.sim_compute_micros > 0);
        assert!(r.sim_uplink_micros > 0);
    }
    let summaries = summarize(&rows);
    assert_eq!(summaries.len(), history.rounds.len());
    for (s, m) in summaries.iter().zip(&history.rounds) {
        assert_eq!(s.engine, "fedavg");
        assert_eq!(s.critical_client, m.trace_critical_client);
        assert_eq!(s.sim_round_micros, m.trace_sim_round_micros);
    }
    assert!(chrome_trace(&rows).contains("fedavg"));
}
